//! The wire protocol: framed request/response verbs over the checkpoint
//! codec.
//!
//! Every message is one checkpoint-style frame (magic `0x43`, version,
//! type tag, payload, CRC-32 — see `streamhist_core::checkpoint`) carried
//! on the socket behind a `u32`-little-endian length prefix:
//!
//! ```text
//! len     u32-le   frame length (7 ..= MAX_FRAME bytes)
//! frame   len B    one FrameWriter-built frame:
//!   magic   u8     0x43
//!   version u8     1
//!   tag     u8     SERVE_REQUEST (32) | SERVE_RESPONSE (33) | SERVE_ERROR (34)
//!   payload ...    verb byte + verb-specific fields
//!   crc32   u32-le over every preceding frame byte
//! ```
//!
//! The length prefix delimits messages, so a frame whose *contents* fail
//! validation (bit flip, truncated payload, unknown verb) costs exactly
//! one error frame in reply — the connection stays usable, because the
//! next length prefix is still in a known place. Only a malformed length
//! itself (0, shorter than a minimal frame, or past [`MAX_FRAME`])
//! desynchronizes the stream; the server answers with a final error frame
//! and closes.
//!
//! Reusing the checkpoint envelope means the wire inherits the corruption
//! guarantees the recovery suite already fuzzes: CRC-32 catches every
//! single-bit flip, counts are bounded against the remaining payload, and
//! trailing bytes are rejected.
//!
//! ## Trace ids
//!
//! Every frame kind (request, response, error) may carry an optional
//! **trace id**: a varint appended after the verb payload, inside the
//! CRC. Presence is signalled by position — a frame whose payload has
//! bytes left after the verb fields carries a trace. A client that sends
//! one gets the same id echoed byte-identically on the reply (success or
//! error); a client that sends none gets a server-assigned id echoed
//! back, so every request can be correlated with the server's slow-query
//! log. Pre-trace peers interoperate unchanged: they emit no trailing
//! varint (decoded as "no trace") and ignore one on receipt
//! ([`Request::decode`]/[`Response::decode`] discard it).

use std::fmt;
use std::io::{self, Read, Write};
use streamhist_core::checkpoint::{tag, FrameReader, FrameWriter};
use streamhist_core::{Query, StreamhistError};
use streamhist_obs::{Event, EventKind};
use streamhist_stream::{Coverage, ShardHealth, ShardMetrics, ShardState};

/// Hard bound on one frame, excluding the length prefix. Requests are
/// tens of bytes and responses hundreds; the bound exists so a malicious
/// length prefix cannot make the server allocate without limit.
pub const MAX_FRAME: usize = 64 * 1024;

/// Smallest possible frame: 3-byte header + 4-byte CRC.
pub const MIN_FRAME: usize = 7;

/// Which quantile substrate answers a [`Request::Quantile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantileMethod {
    /// Greenwald–Khanna summary (rank error `<= eps * n`).
    Gk,
    /// Munro–Paterson / MRL multi-level buffer summary.
    Mrl,
}

impl QuantileMethod {
    fn to_wire(self) -> u8 {
        match self {
            Self::Gk => 0,
            Self::Mrl => 1,
        }
    }

    fn from_wire(b: u8) -> Option<Self> {
        match b {
            0 => Some(Self::Gk),
            1 => Some(Self::Mrl),
            _ => None,
        }
    }
}

/// Request verb bytes (the first payload byte of a request frame).
mod verb {
    pub const RANGE_SUM: u8 = 1;
    pub const RANGE_AVG: u8 = 2;
    pub const POINT: u8 = 3;
    pub const RANGE_COUNT: u8 = 4;
    pub const QUANTILE: u8 = 5;
    pub const SELECTIVITY: u8 = 6;
    pub const SHARD_STATS: u8 = 16;
    pub const RESPAWN_SHARD: u8 = 17;
    pub const CHECKPOINT_ALL: u8 = 18;
    pub const WAL_STATUS: u8 = 19;
    pub const HEALTH: u8 = 20;
    pub const EVENTS: u8 = 21;
}

/// Most events one [`Response::Events`] page carries. Bounds the response
/// frame well under [`MAX_FRAME`]; clients page by sequence number.
pub const EVENTS_PAGE_MAX: usize = 128;

/// Appends the optional trailing trace-id varint (see the module docs).
fn put_trace(w: &mut FrameWriter, trace: Option<u64>) {
    if let Some(t) = trace {
        w.put_varint(t);
    }
}

/// Reads the optional trailing trace-id varint: present iff payload bytes
/// remain after the verb fields.
fn get_trace(r: &mut FrameReader<'_>) -> Result<Option<u64>, StreamhistError> {
    if r.remaining() > 0 {
        Ok(Some(r.get_varint()?))
    } else {
        Ok(None)
    }
}

/// One client request. Index-domain queries (`RangeSum`/`RangeAvg`/
/// `Point`/`RangeCount`) are answered against the fleet-global gathered
/// snapshot; `Quantile` and `Selectivity` against the serve-side
/// value-domain sketches; the remaining verbs are fleet administration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Request {
    /// Sum of window values over inclusive `[start, end]`.
    RangeSum {
        /// Range start (inclusive).
        start: usize,
        /// Range end (inclusive).
        end: usize,
    },
    /// Average of window values over inclusive `[start, end]`.
    RangeAvg {
        /// Range start (inclusive).
        start: usize,
        /// Range end (inclusive).
        end: usize,
    },
    /// The window value at one index.
    Point {
        /// Queried index.
        idx: usize,
    },
    /// Number of window positions in `[start, end]`.
    RangeCount {
        /// Range start (inclusive).
        start: usize,
        /// Range end (inclusive).
        end: usize,
    },
    /// The `phi`-quantile of every value ingested through the serve
    /// state, from the chosen sketch.
    Quantile {
        /// Which sketch answers.
        method: QuantileMethod,
        /// Quantile in `[0, 1]`.
        phi: f64,
    },
    /// Fraction of ingested values `v` with `lo < v <= hi` (GK-backed).
    Selectivity {
        /// Lower bound (exclusive).
        lo: f64,
        /// Upper bound (inclusive).
        hi: f64,
    },
    /// Admin: one shard's counters.
    ShardStats {
        /// Shard index.
        shard: usize,
    },
    /// Admin: respawn one shard's worker (recovering a dead shard).
    RespawnShard {
        /// Shard index.
        shard: usize,
    },
    /// Admin: checkpoint the whole fleet into the server's save slot.
    CheckpointAll,
    /// Admin: the fleet's durability (WAL / checkpoint-store) status.
    WalStatus,
    /// Admin: per-shard supervisor health (state machine position,
    /// consecutive failures, restarts).
    Health,
    /// Admin: a page of flight-recorder events with sequence number
    /// `>= from` (at most [`EVENTS_PAGE_MAX`] per reply; page by passing
    /// the last seq seen plus one).
    Events {
        /// First sequence number wanted (inclusive).
        from: u64,
    },
}

impl Request {
    /// Stable lowercase verb name, used as the metrics label and by the
    /// CLI client.
    #[must_use]
    pub fn verb_name(&self) -> &'static str {
        match self {
            Self::RangeSum { .. } => "range_sum",
            Self::RangeAvg { .. } => "range_avg",
            Self::Point { .. } => "point",
            Self::RangeCount { .. } => "range_count",
            Self::Quantile { .. } => "quantile",
            Self::Selectivity { .. } => "selectivity",
            Self::ShardStats { .. } => "shard_stats",
            Self::RespawnShard { .. } => "respawn_shard",
            Self::CheckpointAll => "checkpoint_all",
            Self::WalStatus => "wal_status",
            Self::Health => "health",
            Self::Events { .. } => "events",
        }
    }

    /// The verb byte this request encodes with (echoed back in scalar
    /// responses).
    #[must_use]
    pub fn wire_verb(&self) -> u8 {
        match self {
            Self::RangeSum { .. } => verb::RANGE_SUM,
            Self::RangeAvg { .. } => verb::RANGE_AVG,
            Self::Point { .. } => verb::POINT,
            Self::RangeCount { .. } => verb::RANGE_COUNT,
            Self::Quantile { .. } => verb::QUANTILE,
            Self::Selectivity { .. } => verb::SELECTIVITY,
            Self::ShardStats { .. } => verb::SHARD_STATS,
            Self::RespawnShard { .. } => verb::RESPAWN_SHARD,
            Self::CheckpointAll => verb::CHECKPOINT_ALL,
            Self::WalStatus => verb::WAL_STATUS,
            Self::Health => verb::HEALTH,
            Self::Events { .. } => verb::EVENTS,
        }
    }

    /// The index-domain [`Query`] a histogram verb evaluates, if this is
    /// one.
    #[must_use]
    pub fn as_query(&self) -> Option<Query> {
        match *self {
            Self::RangeSum { start, end } => Some(Query::RangeSum { start, end }),
            Self::RangeAvg { start, end } => Some(Query::RangeAvg { start, end }),
            Self::Point { idx } => Some(Query::Point { idx }),
            Self::RangeCount { start, end } => Some(Query::RangeCount { start, end }),
            _ => None,
        }
    }

    /// Serializes the request into one self-validating frame (no trace
    /// id; see [`encode_traced`](Self::encode_traced)).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        self.encode_traced(None)
    }

    /// Serializes the request with an optional trailing trace id.
    #[must_use]
    pub fn encode_traced(&self, trace: Option<u64>) -> Vec<u8> {
        let mut w = FrameWriter::new(tag::SERVE_REQUEST);
        match *self {
            Self::RangeSum { start, end } => {
                w.put_u8(verb::RANGE_SUM);
                w.put_usize(start);
                w.put_usize(end);
            }
            Self::RangeAvg { start, end } => {
                w.put_u8(verb::RANGE_AVG);
                w.put_usize(start);
                w.put_usize(end);
            }
            Self::Point { idx } => {
                w.put_u8(verb::POINT);
                w.put_usize(idx);
            }
            Self::RangeCount { start, end } => {
                w.put_u8(verb::RANGE_COUNT);
                w.put_usize(start);
                w.put_usize(end);
            }
            Self::Quantile { method, phi } => {
                w.put_u8(verb::QUANTILE);
                w.put_u8(method.to_wire());
                w.put_f64(phi);
            }
            Self::Selectivity { lo, hi } => {
                w.put_u8(verb::SELECTIVITY);
                w.put_f64(lo);
                w.put_f64(hi);
            }
            Self::ShardStats { shard } => {
                w.put_u8(verb::SHARD_STATS);
                w.put_usize(shard);
            }
            Self::RespawnShard { shard } => {
                w.put_u8(verb::RESPAWN_SHARD);
                w.put_usize(shard);
            }
            Self::CheckpointAll => {
                w.put_u8(verb::CHECKPOINT_ALL);
            }
            Self::WalStatus => {
                w.put_u8(verb::WAL_STATUS);
            }
            Self::Health => {
                w.put_u8(verb::HEALTH);
            }
            Self::Events { from } => {
                w.put_u8(verb::EVENTS);
                w.put_varint(from);
            }
        }
        put_trace(&mut w, trace);
        w.finish()
    }

    /// Decodes a request frame, mapping every failure to the error frame
    /// the server should answer with: envelope/payload corruption to
    /// [`ErrorCode::MalformedFrame`], an unknown verb or quantile method
    /// to [`ErrorCode::Unsupported`].
    ///
    /// # Errors
    ///
    /// [`WireError`] describing the rejection; never panics on arbitrary
    /// input.
    pub fn decode(frame: &[u8]) -> Result<Self, WireError> {
        Self::decode_traced(frame).map(|(req, _)| req)
    }

    /// Decodes a request frame together with its optional trailing trace
    /// id (`None` for pre-trace peers).
    ///
    /// # Errors
    ///
    /// Same contract as [`decode`](Self::decode).
    pub fn decode_traced(frame: &[u8]) -> Result<(Self, Option<u64>), WireError> {
        let malformed = |e: StreamhistError| WireError {
            code: ErrorCode::MalformedFrame,
            detail: e.to_string(),
        };
        let mut r = FrameReader::open(frame, tag::SERVE_REQUEST).map_err(malformed)?;
        let verb_byte = r.get_u8().map_err(malformed)?;
        let req = match verb_byte {
            verb::RANGE_SUM => Self::RangeSum {
                start: r.get_usize().map_err(malformed)?,
                end: r.get_usize().map_err(malformed)?,
            },
            verb::RANGE_AVG => Self::RangeAvg {
                start: r.get_usize().map_err(malformed)?,
                end: r.get_usize().map_err(malformed)?,
            },
            verb::POINT => Self::Point {
                idx: r.get_usize().map_err(malformed)?,
            },
            verb::RANGE_COUNT => Self::RangeCount {
                start: r.get_usize().map_err(malformed)?,
                end: r.get_usize().map_err(malformed)?,
            },
            verb::QUANTILE => {
                let method_byte = r.get_u8().map_err(malformed)?;
                let method = QuantileMethod::from_wire(method_byte).ok_or_else(|| WireError {
                    code: ErrorCode::Unsupported,
                    detail: format!("unknown quantile method {method_byte}"),
                })?;
                Self::Quantile {
                    method,
                    phi: r.get_f64().map_err(malformed)?,
                }
            }
            verb::SELECTIVITY => Self::Selectivity {
                lo: r.get_f64().map_err(malformed)?,
                hi: r.get_f64().map_err(malformed)?,
            },
            verb::SHARD_STATS => Self::ShardStats {
                shard: r.get_usize().map_err(malformed)?,
            },
            verb::RESPAWN_SHARD => Self::RespawnShard {
                shard: r.get_usize().map_err(malformed)?,
            },
            verb::CHECKPOINT_ALL => Self::CheckpointAll,
            verb::WAL_STATUS => Self::WalStatus,
            verb::HEALTH => Self::Health,
            verb::EVENTS => Self::Events {
                from: r.get_varint().map_err(malformed)?,
            },
            other => {
                return Err(WireError {
                    code: ErrorCode::Unsupported,
                    detail: format!("unknown request verb {other}"),
                })
            }
        };
        let trace = get_trace(&mut r).map_err(malformed)?;
        r.finish().map_err(malformed)?;
        Ok((req, trace))
    }
}

/// One successful reply. The first payload byte echoes the request verb,
/// so a response frame is self-describing.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The answer to any scalar query verb (`range_sum`, `range_avg`,
    /// `point`, `range_count`, `quantile`, `selectivity`).
    Scalar {
        /// Echo of the request's verb byte.
        verb: u8,
        /// The (finite) answer.
        value: f64,
        /// How much of the fleet's accepted data the answer stands on. A
        /// strict-policy server always reports complete coverage; a
        /// degraded-policy server may answer from a partial gather, and
        /// this field is how it admits it (DESIGN.md invariant 16).
        coverage: Coverage,
    },
    /// Reply to [`Request::ShardStats`].
    ShardStats {
        /// The queried shard.
        shard: usize,
        /// Total shards in the fleet (so clients can iterate).
        shards: usize,
        /// The shard's counters.
        metrics: ShardMetrics,
    },
    /// Reply to [`Request::RespawnShard`].
    Respawned {
        /// `total_pushed()` of the summary the replacement started from.
        restored_len: u64,
        /// Accepted records lost since the restored checkpoint.
        lost_since_checkpoint: u64,
    },
    /// Reply to [`Request::CheckpointAll`].
    Checkpointed {
        /// Size of the fleet save, in bytes.
        bytes: u64,
    },
    /// Reply to [`Request::WalStatus`].
    WalStatus(streamhist_stream::WalStatus),
    /// Reply to [`Request::Health`].
    Health {
        /// `true` when a supervisor is attached and the entries are its
        /// live state machine; `false` when the server synthesized them
        /// from one-off liveness pings.
        supervised: bool,
        /// One entry per shard, in shard order.
        shards: Vec<ShardHealth>,
    },
    /// Reply to [`Request::Events`]: one page of flight-recorder events
    /// in ascending sequence order.
    Events {
        /// Total events ever recorded (the recorder's next seq) — lets a
        /// client tell "no events in range" from "recorder wrapped past
        /// you".
        recorded: u64,
        /// The page, oldest first (at most [`EVENTS_PAGE_MAX`]).
        events: Vec<Event>,
    },
}

/// Wire bytes for [`EventKind`] variants inside an event frame.
mod ekind {
    pub const SHARD_DIED: u8 = 1;
    pub const SHARD_RESTARTED: u8 = 2;
    pub const RESTART_DEFERRED: u8 = 3;
    pub const SHARD_QUARANTINED: u8 = 4;
    pub const SHARD_PROBATION: u8 = 5;
    pub const SHARD_RECOVERED: u8 = 6;
    pub const CHECKPOINT_UPLOADED: u8 = 7;
    pub const UPLOAD_RETRIED: u8 = 8;
    pub const OVERLOADED: u8 = 9;
    pub const SLOW_QUERY: u8 = 10;
    pub const SNAPSHOT_DEGRADED: u8 = 11;
}

/// Longest `SlowQuery` verb string carried on the wire; longer names are
/// truncated at encode so an event can never blow the page budget.
const EVENT_VERB_MAX: usize = 64;

/// Encodes one event as a self-validating `tag::EVENT` frame (nested
/// inside a [`Response::Events`] page as a length-prefixed blob).
#[must_use]
pub fn encode_event(event: &Event) -> Vec<u8> {
    let mut w = FrameWriter::new(tag::EVENT);
    w.put_varint(event.seq);
    w.put_varint(event.at_ms);
    match &event.kind {
        EventKind::ShardDied { shard } => {
            w.put_u8(ekind::SHARD_DIED);
            w.put_usize(*shard);
        }
        EventKind::ShardRestarted {
            shard,
            restored_len,
            lost,
        } => {
            w.put_u8(ekind::SHARD_RESTARTED);
            w.put_usize(*shard);
            w.put_varint(*restored_len);
            w.put_varint(*lost);
        }
        EventKind::RestartDeferred { shard } => {
            w.put_u8(ekind::RESTART_DEFERRED);
            w.put_usize(*shard);
        }
        EventKind::ShardQuarantined { shard } => {
            w.put_u8(ekind::SHARD_QUARANTINED);
            w.put_usize(*shard);
        }
        EventKind::ShardProbation { shard } => {
            w.put_u8(ekind::SHARD_PROBATION);
            w.put_usize(*shard);
        }
        EventKind::ShardRecovered { shard } => {
            w.put_u8(ekind::SHARD_RECOVERED);
            w.put_usize(*shard);
        }
        EventKind::CheckpointUploaded {
            shard,
            upload_seq,
            bytes,
        } => {
            w.put_u8(ekind::CHECKPOINT_UPLOADED);
            w.put_usize(*shard);
            w.put_varint(*upload_seq);
            w.put_varint(*bytes);
        }
        EventKind::UploadRetried { shard, attempt } => {
            w.put_u8(ekind::UPLOAD_RETRIED);
            w.put_usize(*shard);
            w.put_varint(u64::from(*attempt));
        }
        EventKind::Overloaded { shard, dropped } => {
            w.put_u8(ekind::OVERLOADED);
            match shard {
                Some(s) => {
                    w.put_u8(1);
                    w.put_usize(*s);
                }
                None => w.put_u8(0),
            }
            w.put_varint(*dropped);
        }
        EventKind::SlowQuery {
            verb,
            trace,
            decode_us,
            answer_us,
            encode_us,
            total_us,
        } => {
            w.put_u8(ekind::SLOW_QUERY);
            let mut name = verb.as_str();
            if name.len() > EVENT_VERB_MAX {
                let mut cut = EVENT_VERB_MAX;
                while !name.is_char_boundary(cut) {
                    cut -= 1;
                }
                name = &name[..cut];
            }
            w.put_bytes(name.as_bytes());
            match trace {
                Some(t) => {
                    w.put_u8(1);
                    w.put_varint(*t);
                }
                None => w.put_u8(0),
            }
            w.put_varint(*decode_us);
            w.put_varint(*answer_us);
            w.put_varint(*encode_us);
            w.put_varint(*total_us);
        }
        EventKind::SnapshotDegraded {
            shards_included,
            shards_total,
        } => {
            w.put_u8(ekind::SNAPSHOT_DEGRADED);
            w.put_usize(*shards_included);
            w.put_usize(*shards_total);
        }
    }
    w.finish()
}

/// Decodes one `tag::EVENT` frame.
///
/// # Errors
///
/// [`StreamhistError`] if the frame fails envelope or payload validation
/// or carries an unknown event kind.
pub fn decode_event(frame: &[u8]) -> Result<Event, StreamhistError> {
    let mut r = FrameReader::open(frame, tag::EVENT)?;
    let seq = r.get_varint()?;
    let at_ms = r.get_varint()?;
    let kind_byte = r.get_u8()?;
    let kind = match kind_byte {
        ekind::SHARD_DIED => EventKind::ShardDied {
            shard: r.get_usize()?,
        },
        ekind::SHARD_RESTARTED => EventKind::ShardRestarted {
            shard: r.get_usize()?,
            restored_len: r.get_varint()?,
            lost: r.get_varint()?,
        },
        ekind::RESTART_DEFERRED => EventKind::RestartDeferred {
            shard: r.get_usize()?,
        },
        ekind::SHARD_QUARANTINED => EventKind::ShardQuarantined {
            shard: r.get_usize()?,
        },
        ekind::SHARD_PROBATION => EventKind::ShardProbation {
            shard: r.get_usize()?,
        },
        ekind::SHARD_RECOVERED => EventKind::ShardRecovered {
            shard: r.get_usize()?,
        },
        ekind::CHECKPOINT_UPLOADED => EventKind::CheckpointUploaded {
            shard: r.get_usize()?,
            upload_seq: r.get_varint()?,
            bytes: r.get_varint()?,
        },
        ekind::UPLOAD_RETRIED => EventKind::UploadRetried {
            shard: r.get_usize()?,
            attempt: u32::try_from(r.get_varint()?).map_err(|_| {
                StreamhistError::CorruptCheckpoint {
                    reason: "upload-retried attempt exceeds u32",
                }
            })?,
        },
        ekind::OVERLOADED => {
            let flag = r.get_u8()?;
            let shard = match flag {
                0 => None,
                1 => Some(r.get_usize()?),
                _ => {
                    return Err(StreamhistError::CorruptCheckpoint {
                        reason: "overloaded shard flag out of range",
                    })
                }
            };
            EventKind::Overloaded {
                shard,
                dropped: r.get_varint()?,
            }
        }
        ekind::SLOW_QUERY => {
            let verb = String::from_utf8_lossy(r.get_bytes()?).into_owned();
            let flag = r.get_u8()?;
            let trace = match flag {
                0 => None,
                1 => Some(r.get_varint()?),
                _ => {
                    return Err(StreamhistError::CorruptCheckpoint {
                        reason: "slow-query trace flag out of range",
                    })
                }
            };
            EventKind::SlowQuery {
                verb,
                trace,
                decode_us: r.get_varint()?,
                answer_us: r.get_varint()?,
                encode_us: r.get_varint()?,
                total_us: r.get_varint()?,
            }
        }
        ekind::SNAPSHOT_DEGRADED => EventKind::SnapshotDegraded {
            shards_included: r.get_usize()?,
            shards_total: r.get_usize()?,
        },
        _ => {
            return Err(StreamhistError::CorruptCheckpoint {
                reason: "unknown event kind",
            })
        }
    };
    r.finish()?;
    Ok(Event { seq, at_ms, kind })
}

impl Response {
    /// Serializes the response into one self-validating frame (no trace
    /// id; see [`encode_traced`](Self::encode_traced)).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        self.encode_traced(None)
    }

    /// Serializes the response with an optional trailing trace id.
    #[must_use]
    pub fn encode_traced(&self, trace: Option<u64>) -> Vec<u8> {
        let mut w = FrameWriter::new(tag::SERVE_RESPONSE);
        match self {
            Self::Scalar {
                verb,
                value,
                coverage,
            } => {
                w.put_u8(*verb);
                w.put_f64(*value);
                w.put_usize(coverage.shards_included);
                w.put_usize(coverage.shards_total);
                w.put_varint(coverage.records_represented);
                w.put_varint(coverage.records_total);
            }
            Self::ShardStats {
                shard,
                shards,
                metrics,
            } => {
                w.put_u8(verb::SHARD_STATS);
                w.put_usize(*shard);
                w.put_usize(*shards);
                w.put_varint(metrics.pushes_accepted);
                w.put_varint(metrics.values_rejected);
                w.put_varint(metrics.records_dropped);
                w.put_varint(metrics.snapshots_served);
                w.put_varint(metrics.respawns);
                w.put_varint(metrics.checkpoints_taken);
                w.put_varint(metrics.checkpoint_bytes);
                w.put_varint(metrics.restores);
                w.put_usize(metrics.queue_depth);
            }
            Self::Respawned {
                restored_len,
                lost_since_checkpoint,
            } => {
                w.put_u8(verb::RESPAWN_SHARD);
                w.put_varint(*restored_len);
                w.put_varint(*lost_since_checkpoint);
            }
            Self::Checkpointed { bytes } => {
                w.put_u8(verb::CHECKPOINT_ALL);
                w.put_varint(*bytes);
            }
            Self::WalStatus(s) => {
                w.put_u8(verb::WAL_STATUS);
                w.put_u8(u8::from(s.enabled));
                w.put_varint(s.wal_sync);
                w.put_varint(s.checkpoint_interval);
                w.put_varint(s.segments_written);
                w.put_varint(s.segment_bytes);
                w.put_varint(s.frames_written);
                w.put_varint(s.frame_bytes);
                w.put_varint(s.bytes_ingested);
                w.put_varint(s.bytes_written);
                w.put_f64(s.amplification);
                w.put_varint(s.retries);
                w.put_varint(s.failures);
                w.put_varint(s.segments_dropped);
                w.put_varint(s.queue_depth);
            }
            Self::Health { supervised, shards } => {
                w.put_u8(verb::HEALTH);
                w.put_u8(u8::from(*supervised));
                w.put_usize(shards.len());
                for h in shards {
                    w.put_usize(h.shard);
                    w.put_u8(h.state.as_u8());
                    w.put_varint(h.consecutive_failures);
                    w.put_varint(h.restarts);
                }
            }
            Self::Events { recorded, events } => {
                w.put_u8(verb::EVENTS);
                w.put_varint(*recorded);
                let page = &events[..events.len().min(EVENTS_PAGE_MAX)];
                w.put_usize(page.len());
                for e in page {
                    w.put_bytes(&encode_event(e));
                }
            }
        }
        put_trace(&mut w, trace);
        w.finish()
    }

    /// Decodes a response frame, discarding any trailing trace id (see
    /// [`decode_traced`](Self::decode_traced)).
    ///
    /// # Errors
    ///
    /// [`StreamhistError`] if the frame fails envelope or payload
    /// validation.
    pub fn decode(frame: &[u8]) -> Result<Self, StreamhistError> {
        Self::decode_traced(frame).map(|(resp, _)| resp)
    }

    /// Decodes a response frame together with its optional trailing
    /// trace id (`None` for pre-trace peers).
    ///
    /// # Errors
    ///
    /// [`StreamhistError`] if the frame fails envelope or payload
    /// validation.
    pub fn decode_traced(frame: &[u8]) -> Result<(Self, Option<u64>), StreamhistError> {
        let mut r = FrameReader::open(frame, tag::SERVE_RESPONSE)?;
        let verb_byte = r.get_u8()?;
        let resp = match verb_byte {
            verb::SHARD_STATS => Self::ShardStats {
                shard: r.get_usize()?,
                shards: r.get_usize()?,
                metrics: ShardMetrics {
                    pushes_accepted: r.get_varint()?,
                    values_rejected: r.get_varint()?,
                    records_dropped: r.get_varint()?,
                    snapshots_served: r.get_varint()?,
                    respawns: r.get_varint()?,
                    checkpoints_taken: r.get_varint()?,
                    checkpoint_bytes: r.get_varint()?,
                    restores: r.get_varint()?,
                    queue_depth: r.get_usize()?,
                },
            },
            verb::RESPAWN_SHARD => Self::Respawned {
                restored_len: r.get_varint()?,
                lost_since_checkpoint: r.get_varint()?,
            },
            verb::CHECKPOINT_ALL => Self::Checkpointed {
                bytes: r.get_varint()?,
            },
            verb::WAL_STATUS => {
                let enabled_byte = r.get_u8()?;
                if enabled_byte > 1 {
                    return Err(StreamhistError::CorruptCheckpoint {
                        reason: "wal-status enabled byte out of range",
                    });
                }
                Self::WalStatus(streamhist_stream::WalStatus {
                    enabled: enabled_byte == 1,
                    wal_sync: r.get_varint()?,
                    checkpoint_interval: r.get_varint()?,
                    segments_written: r.get_varint()?,
                    segment_bytes: r.get_varint()?,
                    frames_written: r.get_varint()?,
                    frame_bytes: r.get_varint()?,
                    bytes_ingested: r.get_varint()?,
                    bytes_written: r.get_varint()?,
                    amplification: r.get_f64()?,
                    retries: r.get_varint()?,
                    failures: r.get_varint()?,
                    segments_dropped: r.get_varint()?,
                    queue_depth: r.get_varint()?,
                })
            }
            verb::HEALTH => {
                let supervised_byte = r.get_u8()?;
                if supervised_byte > 1 {
                    return Err(StreamhistError::CorruptCheckpoint {
                        reason: "health supervised byte out of range",
                    });
                }
                // shard(>=1) + state(1) + two varints(>=1 each) = 4 bytes
                // minimum per entry.
                let n = r.get_count(4)?;
                let mut shards = Vec::with_capacity(n);
                for _ in 0..n {
                    let shard = r.get_usize()?;
                    let state_byte = r.get_u8()?;
                    let state = ShardState::from_u8(state_byte).ok_or(
                        StreamhistError::CorruptCheckpoint {
                            reason: "unknown shard health state",
                        },
                    )?;
                    shards.push(ShardHealth {
                        shard,
                        state,
                        consecutive_failures: r.get_varint()?,
                        restarts: r.get_varint()?,
                    });
                }
                Self::Health {
                    supervised: supervised_byte == 1,
                    shards,
                }
            }
            verb::EVENTS => {
                let recorded = r.get_varint()?;
                // Each entry is a length-prefixed nested frame: at least
                // a 1-byte length plus MIN_FRAME bytes of frame.
                let n = r.get_count(1 + MIN_FRAME)?;
                if n > EVENTS_PAGE_MAX {
                    return Err(StreamhistError::CorruptCheckpoint {
                        reason: "events page exceeds the page bound",
                    });
                }
                let mut events = Vec::with_capacity(n);
                for _ in 0..n {
                    events.push(decode_event(r.get_bytes()?)?);
                }
                Self::Events { recorded, events }
            }
            v if (verb::RANGE_SUM..=verb::SELECTIVITY).contains(&v) => {
                let value = r.get_f64()?;
                let coverage = Coverage {
                    shards_included: r.get_usize()?,
                    shards_total: r.get_usize()?,
                    records_represented: r.get_varint()?,
                    records_total: r.get_varint()?,
                };
                if coverage.shards_included > coverage.shards_total
                    || coverage.records_represented > coverage.records_total
                {
                    return Err(StreamhistError::CorruptCheckpoint {
                        reason: "coverage claims more than the fleet total",
                    });
                }
                Self::Scalar {
                    verb: v,
                    value,
                    coverage,
                }
            }
            _ => {
                return Err(StreamhistError::CorruptCheckpoint {
                    reason: "unknown response verb",
                })
            }
        };
        let trace = get_trace(&mut r)?;
        r.finish()?;
        Ok((resp, trace))
    }
}

/// Machine-readable category of a structured error frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request frame failed envelope or payload validation
    /// (truncated, bit-flipped, trailing bytes, bad tag).
    MalformedFrame,
    /// The request decoded but its arguments are invalid for the current
    /// state (inverted range, out-of-domain index, bad quantile, bad
    /// shard index, empty sketch).
    InvalidQuery,
    /// The addressed shard's worker has died (respawn it).
    ShardDead,
    /// Unknown verb or quantile method (speak a newer protocol?).
    Unsupported,
    /// The server failed internally (I/O on a checkpoint, a non-finite
    /// answer) — the request was well-formed.
    Internal,
    /// The server's worker pool and backlog are saturated; retry later.
    Overloaded,
}

impl ErrorCode {
    fn to_wire(self) -> u8 {
        match self {
            Self::MalformedFrame => 1,
            Self::InvalidQuery => 2,
            Self::ShardDead => 3,
            Self::Unsupported => 4,
            Self::Internal => 5,
            Self::Overloaded => 6,
        }
    }

    fn from_wire(b: u8) -> Option<Self> {
        match b {
            1 => Some(Self::MalformedFrame),
            2 => Some(Self::InvalidQuery),
            3 => Some(Self::ShardDead),
            4 => Some(Self::Unsupported),
            5 => Some(Self::Internal),
            6 => Some(Self::Overloaded),
            _ => None,
        }
    }

    /// Stable lowercase name (the error-metrics label).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::MalformedFrame => "malformed_frame",
            Self::InvalidQuery => "invalid_query",
            Self::ShardDead => "shard_dead",
            Self::Unsupported => "unsupported",
            Self::Internal => "internal",
            Self::Overloaded => "overloaded",
        }
    }
}

/// A structured error reply: category code plus a human-readable detail
/// string. The server sends one of these for every request it cannot
/// answer — a malformed or invalid request never drops the connection and
/// never panics the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Machine-readable category.
    pub code: ErrorCode,
    /// Human-readable explanation (bounded; truncated at encode time).
    pub detail: String,
}

impl WireError {
    /// Convenience constructor.
    #[must_use]
    pub fn new(code: ErrorCode, detail: impl Into<String>) -> Self {
        Self {
            code,
            detail: detail.into(),
        }
    }

    /// Serializes the error into one self-validating frame. The detail
    /// string is truncated to 512 bytes (on a character boundary) so an
    /// error path can never build an oversized frame.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        self.encode_traced(None)
    }

    /// Serializes the error with an optional trailing trace id — error
    /// replies echo the request's trace just like successes do.
    #[must_use]
    pub fn encode_traced(&self, trace: Option<u64>) -> Vec<u8> {
        let mut w = FrameWriter::new(tag::SERVE_ERROR);
        w.put_u8(self.code.to_wire());
        let mut detail = self.detail.as_str();
        if detail.len() > 512 {
            let mut cut = 512;
            while !detail.is_char_boundary(cut) {
                cut -= 1;
            }
            detail = &detail[..cut];
        }
        w.put_bytes(detail.as_bytes());
        put_trace(&mut w, trace);
        w.finish()
    }

    /// Decodes an error frame, discarding any trailing trace id.
    ///
    /// # Errors
    ///
    /// [`StreamhistError`] if the frame fails validation or carries an
    /// unknown error code.
    pub fn decode(frame: &[u8]) -> Result<Self, StreamhistError> {
        Self::decode_traced(frame).map(|(e, _)| e)
    }

    /// Decodes an error frame together with its optional trailing trace
    /// id.
    ///
    /// # Errors
    ///
    /// [`StreamhistError`] if the frame fails validation or carries an
    /// unknown error code.
    pub fn decode_traced(frame: &[u8]) -> Result<(Self, Option<u64>), StreamhistError> {
        let mut r = FrameReader::open(frame, tag::SERVE_ERROR)?;
        let code_byte = r.get_u8()?;
        let code = ErrorCode::from_wire(code_byte).ok_or(StreamhistError::CorruptCheckpoint {
            reason: "unknown error code",
        })?;
        let detail = String::from_utf8_lossy(r.get_bytes()?).into_owned();
        let trace = get_trace(&mut r)?;
        r.finish()?;
        Ok((Self { code, detail }, trace))
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code.name(), self.detail)
    }
}

impl std::error::Error for WireError {}

/// What [`read_packet`] found on the socket.
#[derive(Debug)]
pub enum Packet {
    /// One complete frame (length already validated; contents not yet).
    Frame(Vec<u8>),
    /// The peer speaks HTTP (`GET `/`POST`/`HEAD`/`PUT `): a human with
    /// `curl` found the binary port. The four sniffed bytes are returned
    /// so the caller can answer with a readable HTTP error.
    Http([u8; 4]),
    /// The length prefix is outside `[MIN_FRAME, MAX_FRAME]` — the stream
    /// is desynchronized beyond recovery.
    BadLength(u32),
    /// Clean EOF before any byte of a next message.
    Closed,
}

/// Writes one already-encoded frame with its length prefix.
///
/// # Errors
///
/// Propagates the underlying write error.
pub fn write_packet<W: Write>(w: &mut W, frame: &[u8]) -> io::Result<()> {
    debug_assert!(frame.len() <= MAX_FRAME, "oversized frame built locally");
    let len = u32::try_from(frame.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame exceeds u32"))?;
    // One write for prefix + frame: two small writes would emit two TCP
    // segments, and Nagle holding the second until the peer's delayed ACK
    // adds ~40ms to every round trip.
    let mut packet = Vec::with_capacity(4 + frame.len());
    packet.extend_from_slice(&len.to_le_bytes());
    packet.extend_from_slice(frame);
    w.write_all(&packet)?;
    w.flush()
}

/// Reads one length-prefixed frame (or detects EOF / HTTP / a bogus
/// length). Never allocates more than [`MAX_FRAME`] bytes.
///
/// # Errors
///
/// Propagates underlying read errors, including timeouts on a stalled
/// peer — a half-sent frame cannot hang the caller forever as long as the
/// stream has a read deadline.
pub fn read_packet<R: Read>(r: &mut R) -> io::Result<Packet> {
    let mut prefix = [0u8; 4];
    let mut filled = 0usize;
    while filled < 4 {
        let n = r.read(&mut prefix[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(Packet::Closed);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "EOF inside frame length prefix",
            ));
        }
        filled += n;
    }
    if matches!(&prefix, b"GET " | b"POST" | b"HEAD" | b"PUT ") {
        return Ok(Packet::Http(prefix));
    }
    let len = u32::from_le_bytes(prefix);
    if (len as usize) < MIN_FRAME || len as usize > MAX_FRAME {
        return Ok(Packet::BadLength(len));
    }
    let mut frame = vec![0u8; len as usize];
    r.read_exact(&mut frame)?;
    Ok(Packet::Frame(frame))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_requests() -> Vec<Request> {
        vec![
            Request::RangeSum { start: 3, end: 90 },
            Request::RangeAvg { start: 0, end: 0 },
            Request::Point { idx: 17 },
            Request::RangeCount {
                start: 5,
                end: usize::MAX,
            },
            Request::Quantile {
                method: QuantileMethod::Gk,
                phi: 0.99,
            },
            Request::Quantile {
                method: QuantileMethod::Mrl,
                phi: 0.5,
            },
            Request::Selectivity { lo: -1.5, hi: 2.5 },
            Request::ShardStats { shard: 2 },
            Request::RespawnShard { shard: 0 },
            Request::CheckpointAll,
            Request::WalStatus,
            Request::Health,
            Request::Events { from: 0 },
            Request::Events { from: u64::MAX },
        ]
    }

    fn all_event_kinds() -> Vec<EventKind> {
        vec![
            EventKind::ShardDied { shard: 3 },
            EventKind::ShardRestarted {
                shard: 1,
                restored_len: 500,
                lost: 12,
            },
            EventKind::RestartDeferred { shard: 0 },
            EventKind::ShardQuarantined { shard: 7 },
            EventKind::ShardProbation { shard: 7 },
            EventKind::ShardRecovered { shard: 7 },
            EventKind::CheckpointUploaded {
                shard: 2,
                upload_seq: 64,
                bytes: 4096,
            },
            EventKind::UploadRetried {
                shard: 2,
                attempt: 3,
            },
            EventKind::Overloaded {
                shard: Some(1),
                dropped: 256,
            },
            EventKind::Overloaded {
                shard: None,
                dropped: 9,
            },
            EventKind::SlowQuery {
                verb: "range_sum".to_string(),
                trace: Some(0xDEAD_BEEF),
                decode_us: 12,
                answer_us: 90_000,
                encode_us: 8,
                total_us: 90_020,
            },
            EventKind::SlowQuery {
                verb: "quantile".to_string(),
                trace: None,
                decode_us: 0,
                answer_us: 1,
                encode_us: 0,
                total_us: 1,
            },
            EventKind::SnapshotDegraded {
                shards_included: 3,
                shards_total: 4,
            },
        ]
    }

    fn full_coverage() -> Coverage {
        Coverage {
            shards_included: 4,
            shards_total: 4,
            records_represented: 1000,
            records_total: 1000,
        }
    }

    #[test]
    fn requests_roundtrip() {
        for req in all_requests() {
            let frame = req.encode();
            assert_eq!(Request::decode(&frame), Ok(req), "{req:?}");
        }
    }

    #[test]
    fn responses_roundtrip() {
        let metrics = ShardMetrics {
            pushes_accepted: 10,
            values_rejected: 2,
            records_dropped: 1,
            snapshots_served: 4,
            respawns: 1,
            checkpoints_taken: 3,
            checkpoint_bytes: 900,
            restores: 1,
            queue_depth: 7,
        };
        for resp in [
            Response::Scalar {
                verb: 1,
                value: 42.5,
                coverage: full_coverage(),
            },
            Response::Scalar {
                verb: 4,
                value: 7.0,
                coverage: Coverage {
                    shards_included: 3,
                    shards_total: 4,
                    records_represented: 750,
                    records_total: 1000,
                },
            },
            Response::ShardStats {
                shard: 2,
                shards: 4,
                metrics,
            },
            Response::Respawned {
                restored_len: 128,
                lost_since_checkpoint: 3,
            },
            Response::Checkpointed { bytes: 4096 },
            Response::WalStatus(streamhist_stream::WalStatus::default()),
            Response::WalStatus(streamhist_stream::WalStatus {
                enabled: true,
                wal_sync: 64,
                checkpoint_interval: 1024,
                segments_written: 11,
                segment_bytes: 6000,
                frames_written: 2,
                frame_bytes: 900,
                bytes_ingested: 5632,
                bytes_written: 6900,
                amplification: 1.225,
                retries: 3,
                failures: 1,
                segments_dropped: 2,
                queue_depth: 4,
            }),
            Response::Health {
                supervised: false,
                shards: Vec::new(),
            },
            Response::Health {
                supervised: true,
                shards: vec![
                    ShardHealth {
                        shard: 0,
                        state: ShardState::Live,
                        consecutive_failures: 0,
                        restarts: 2,
                    },
                    ShardHealth {
                        shard: 1,
                        state: ShardState::Quarantined,
                        consecutive_failures: 5,
                        restarts: 9,
                    },
                    ShardHealth {
                        shard: 2,
                        state: ShardState::Recovering,
                        consecutive_failures: 1,
                        restarts: 1,
                    },
                ],
            },
        ] {
            let frame = resp.encode();
            assert_eq!(Response::decode(&frame).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn trace_ids_roundtrip_byte_identically_on_every_frame_kind() {
        for trace in [None, Some(0u64), Some(1), Some(u64::MAX)] {
            for req in all_requests() {
                let frame = req.encode_traced(trace);
                assert_eq!(Request::decode_traced(&frame), Ok((req, trace)), "{req:?}");
                // Untraced decode still accepts the frame (discards trace).
                assert_eq!(Request::decode(&frame), Ok(req));
            }
            let resp = Response::Scalar {
                verb: 1,
                value: 2.5,
                coverage: full_coverage(),
            };
            let frame = resp.encode_traced(trace);
            assert_eq!(Response::decode_traced(&frame).unwrap(), (resp, trace));
            let err = WireError::new(ErrorCode::InvalidQuery, "nope");
            let frame = err.encode_traced(trace);
            assert_eq!(WireError::decode_traced(&frame).unwrap(), (err, trace));
        }
    }

    #[test]
    fn pre_trace_frames_decode_as_trace_absent() {
        // encode() emits no trailing varint — exactly what an old peer
        // sends — and decode_traced must see "no trace".
        let frame = Request::Health.encode();
        assert_eq!(Request::decode_traced(&frame), Ok((Request::Health, None)));
    }

    #[test]
    fn events_roundtrip_every_kind() {
        let events: Vec<Event> = all_event_kinds()
            .into_iter()
            .enumerate()
            .map(|(i, kind)| Event {
                seq: i as u64,
                at_ms: i as u64 * 10,
                kind,
            })
            .collect();
        for e in &events {
            let frame = encode_event(e);
            assert_eq!(&decode_event(&frame).unwrap(), e, "{e:?}");
        }
        let resp = Response::Events {
            recorded: 99,
            events,
        };
        let frame = resp.encode_traced(Some(7));
        assert_eq!(Response::decode_traced(&frame).unwrap(), (resp, Some(7)));
    }

    #[test]
    fn events_page_is_capped_at_encode_and_validated_at_decode() {
        let many: Vec<Event> = (0..EVENTS_PAGE_MAX as u64 + 50)
            .map(|seq| Event {
                seq,
                at_ms: seq,
                kind: EventKind::ShardDied { shard: 0 },
            })
            .collect();
        let frame = Response::Events {
            recorded: many.len() as u64,
            events: many,
        }
        .encode();
        assert!(frame.len() <= MAX_FRAME, "page must fit one frame");
        match Response::decode(&frame).unwrap() {
            Response::Events { events, .. } => assert_eq!(events.len(), EVENTS_PAGE_MAX),
            other => panic!("expected events, got {other:?}"),
        }
    }

    #[test]
    fn event_bit_flips_and_truncations_are_rejected() {
        let frame = encode_event(&Event {
            seq: 5,
            at_ms: 17,
            kind: EventKind::SlowQuery {
                verb: "point".to_string(),
                trace: Some(3),
                decode_us: 1,
                answer_us: 2,
                encode_us: 3,
                total_us: 6,
            },
        });
        for byte in 0..frame.len() {
            let mut flipped = frame.clone();
            flipped[byte] ^= 1;
            assert!(decode_event(&flipped).is_err(), "flip at {byte}");
        }
        for cut in 0..frame.len() {
            assert!(decode_event(&frame[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn slow_query_verb_is_truncated_on_the_wire() {
        let e = Event {
            seq: 0,
            at_ms: 0,
            kind: EventKind::SlowQuery {
                verb: "v".repeat(500),
                trace: None,
                decode_us: 0,
                answer_us: 0,
                encode_us: 0,
                total_us: 0,
            },
        };
        let decoded = decode_event(&encode_event(&e)).unwrap();
        match decoded.kind {
            EventKind::SlowQuery { verb, .. } => assert_eq!(verb.len(), 64),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn overclaiming_coverage_is_rejected() {
        // shards_included > shards_total and records_represented >
        // records_total are both impossible claims; decode rejects each.
        for (inc, tot, rep, all) in [(5usize, 4usize, 10u64, 10u64), (4, 4, 11, 10)] {
            let mut w = FrameWriter::new(tag::SERVE_RESPONSE);
            w.put_u8(verb::RANGE_SUM);
            w.put_f64(1.0);
            w.put_usize(inc);
            w.put_usize(tot);
            w.put_varint(rep);
            w.put_varint(all);
            let frame = w.finish();
            assert!(Response::decode(&frame).is_err(), "{inc}/{tot} {rep}/{all}");
        }
    }

    #[test]
    fn health_state_and_supervised_bytes_are_validated() {
        let mut w = FrameWriter::new(tag::SERVE_RESPONSE);
        w.put_u8(verb::HEALTH);
        w.put_u8(2); // not a bool
        w.put_usize(0);
        assert!(Response::decode(&w.finish()).is_err());

        let mut w = FrameWriter::new(tag::SERVE_RESPONSE);
        w.put_u8(verb::HEALTH);
        w.put_u8(1);
        w.put_usize(1);
        w.put_usize(0);
        w.put_u8(9); // not a ShardState
        w.put_varint(0);
        w.put_varint(0);
        assert!(Response::decode(&w.finish()).is_err());
    }

    #[test]
    fn wal_status_enabled_byte_is_validated() {
        let mut w = FrameWriter::new(tag::SERVE_RESPONSE);
        w.put_u8(verb::WAL_STATUS);
        w.put_u8(7); // not a bool
        let frame = w.finish();
        assert!(Response::decode(&frame).is_err());
    }

    #[test]
    fn errors_roundtrip_and_truncate_detail() {
        let e = WireError::new(ErrorCode::InvalidQuery, "inverted range");
        assert_eq!(WireError::decode(&e.encode()).unwrap(), e);
        let long = WireError::new(ErrorCode::Internal, "x".repeat(5000));
        let decoded = WireError::decode(&long.encode()).unwrap();
        assert_eq!(decoded.detail.len(), 512);
        assert!(long.encode().len() < 600);
    }

    #[test]
    fn every_bit_flip_of_a_request_is_rejected_cleanly() {
        let frame = Request::RangeSum { start: 1, end: 9 }.encode();
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut flipped = frame.clone();
                flipped[byte] ^= 1 << bit;
                let err = Request::decode(&flipped).expect_err("flip must fail CRC");
                assert_eq!(err.code, ErrorCode::MalformedFrame);
            }
        }
    }

    #[test]
    fn every_truncation_of_a_request_is_rejected_cleanly() {
        let frame = Request::Quantile {
            method: QuantileMethod::Gk,
            phi: 0.5,
        }
        .encode();
        for cut in 0..frame.len() {
            assert!(Request::decode(&frame[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn unknown_verb_is_unsupported_not_malformed() {
        let mut w = FrameWriter::new(tag::SERVE_REQUEST);
        w.put_u8(200);
        let frame = w.finish();
        let err = Request::decode(&frame).expect_err("unknown verb");
        assert_eq!(err.code, ErrorCode::Unsupported);
    }

    #[test]
    fn wrong_tag_is_malformed() {
        let frame = Response::Scalar {
            verb: 1,
            value: 1.0,
            coverage: full_coverage(),
        }
        .encode();
        let err = Request::decode(&frame).expect_err("response is not a request");
        assert_eq!(err.code, ErrorCode::MalformedFrame);
    }

    #[test]
    fn packets_roundtrip_and_validate_lengths() {
        let frame = Request::CheckpointAll.encode();
        let mut wire = Vec::new();
        write_packet(&mut wire, &frame).unwrap();
        let mut cursor = io::Cursor::new(&wire);
        match read_packet(&mut cursor).unwrap() {
            Packet::Frame(f) => assert_eq!(f, frame),
            other => panic!("expected frame, got {other:?}"),
        }
        assert!(matches!(
            read_packet(&mut io::Cursor::new(&wire[..wire.len() - 1])),
            Ok(Packet::Frame(_)) | Err(_)
        ));
        // Zero / huge lengths are flagged, not allocated.
        let mut zero = io::Cursor::new(vec![0u8, 0, 0, 0]);
        assert!(matches!(
            read_packet(&mut zero).unwrap(),
            Packet::BadLength(0)
        ));
        let mut huge = io::Cursor::new(u32::MAX.to_le_bytes().to_vec());
        assert!(matches!(
            read_packet(&mut huge).unwrap(),
            Packet::BadLength(u32::MAX)
        ));
        // HTTP methods are sniffed.
        let mut http = io::Cursor::new(b"GET /metrics HTTP/1.1\r\n\r\n".to_vec());
        assert!(matches!(read_packet(&mut http).unwrap(), Packet::Http(_)));
        // Clean EOF.
        let mut empty = io::Cursor::new(Vec::new());
        assert!(matches!(read_packet(&mut empty).unwrap(), Packet::Closed));
    }
}
