//! The TCP front-end: a nonblocking accept loop feeding a bounded worker
//! pool, one connection per worker at a time.
//!
//! The shape generalizes the obs crate's `ExpositionServer`: the listener
//! runs nonblocking so the accept thread can poll a stop flag between
//! accepts, and every connection socket gets hard read/write deadlines so
//! no peer — however stalled or malicious — can park a worker forever.
//! What's new is the pool: scrapes are rare, queries are not, so accepted
//! connections go through a bounded `sync_channel` to `workers` handler
//! threads. When the pool and its backlog are saturated the accept thread
//! answers inline with an [`ErrorCode::Overloaded`] error frame and
//! closes — load shedding is explicit and visible to clients, never a
//! silent hang.
//!
//! Per connection, the worker loops: read one length-prefixed frame,
//! decode, answer via [`ServeState::answer`], write the response (or a
//! structured error frame). A frame that fails CRC or decoding costs one
//! error frame and the connection continues, because the length prefix —
//! not the frame contents — delimits messages. Only an unrecoverable
//! length prefix (outside the legal window) or an HTTP greeting ends the
//! connection, each with a final best-effort reply.

use crate::protocol::{read_packet, write_packet, ErrorCode, Packet, Request, WireError};
use crate::state::ServeState;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use streamhist_obs::{EventKind, FlightRecorder};

/// How long the accept loop sleeps between polls when idle.
const IDLE_POLL: Duration = Duration::from_millis(25);
/// Queued-connection backlog on top of the in-flight ones (per pool, not
/// per worker).
const BACKLOG: usize = 16;

/// Operator-tunable server knobs ([`QueryServer::start_with`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerOptions {
    /// Per-connection read/write deadline. Reads time out so workers can
    /// poll the stop flag on idle connections; a timeout mid-frame (a
    /// stalled peer) ends the connection. Must be at least 1ms — a
    /// sub-millisecond deadline would kill healthy connections between
    /// two scheduler ticks.
    pub io_timeout: Duration,
    /// Requests whose end-to-end handling time (decode, answer, encode,
    /// and reply write combined) reaches this threshold land their full
    /// phase timeline in the fleet's flight recorder as an
    /// [`EventKind::SlowQuery`] event. `Duration::ZERO` logs every
    /// request — useful in tests and for short traffic captures.
    pub slow_query: Duration,
}

impl Default for ServerOptions {
    fn default() -> Self {
        Self {
            io_timeout: Duration::from_millis(500),
            slow_query: Duration::from_millis(100),
        }
    }
}

impl ServerOptions {
    fn validate(&self) -> io::Result<()> {
        if self.io_timeout < Duration::from_millis(1) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "ServerOptions::io_timeout must be at least 1ms",
            ));
        }
        Ok(())
    }
}

/// A running query server. Dropping it (or calling
/// [`shutdown`](QueryServer::shutdown)) stops the accept loop, drains the
/// workers, and joins every thread.
#[derive(Debug)]
pub struct QueryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl QueryServer {
    /// Binds `addr` (port 0 for ephemeral) and starts serving `state`
    /// with `workers` handler threads (clamped to at least 1) and
    /// default [`ServerOptions`].
    ///
    /// # Errors
    ///
    /// The bind/configure/spawn error if the server cannot start.
    pub fn start(addr: impl ToSocketAddrs, state: ServeState, workers: usize) -> io::Result<Self> {
        Self::start_with(addr, state, workers, ServerOptions::default())
    }

    /// As [`start`](Self::start), with explicit [`ServerOptions`].
    ///
    /// # Errors
    ///
    /// `InvalidInput` for out-of-range options, otherwise the
    /// bind/configure/spawn error if the server cannot start.
    pub fn start_with(
        addr: impl ToSocketAddrs,
        state: ServeState,
        workers: usize,
        options: ServerOptions,
    ) -> io::Result<Self> {
        options.validate()?;
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let workers = workers.max(1);
        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(BACKLOG);
        let rx = Arc::new(Mutex::new(rx));
        let mut worker_handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let rx = Arc::clone(&rx);
            let state = state.clone();
            let stop = Arc::clone(&stop);
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("streamhist-serve-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &state, &stop, options.slow_query))?,
            );
        }
        let stop_flag = Arc::clone(&stop);
        let recorder = Arc::clone(state.recorder());
        let accept_handle = std::thread::Builder::new()
            .name("streamhist-serve-accept".to_string())
            .spawn(move || {
                accept_loop(&listener, &tx, &stop_flag, options.io_timeout, &recorder);
            })?;
        Ok(Self {
            addr: local,
            stop,
            accept_handle: Some(accept_handle),
            worker_handles,
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, lets in-flight connections drain, joins all
    /// threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for QueryServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(
    listener: &TcpListener,
    pool: &SyncSender<TcpStream>,
    stop: &AtomicBool,
    io_timeout: Duration,
    recorder: &FlightRecorder,
) {
    // Connections shed by this loop, for the flight-recorder event's
    // cumulative count.
    let shed = AtomicU64::new(0);
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Configure before queueing so even a shed connection has
                // deadlines on its farewell write.
                if stream.set_nonblocking(false).is_err()
                    || stream.set_read_timeout(Some(io_timeout)).is_err()
                    || stream.set_write_timeout(Some(io_timeout)).is_err()
                    || stream.set_nodelay(true).is_err()
                {
                    continue;
                }
                match pool.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(mut stream)) => {
                        // Shed load explicitly: one error frame, close.
                        // `shard: None` marks the serve accept pool (as
                        // opposed to a shard ingest queue) as the
                        // overloaded component.
                        let dropped = shed.fetch_add(1, Ordering::Relaxed) + 1;
                        recorder.record(EventKind::Overloaded {
                            shard: None,
                            dropped,
                        });
                        let frame = WireError::new(
                            ErrorCode::Overloaded,
                            "worker pool saturated; retry later",
                        )
                        .encode();
                        let _ = write_packet(&mut stream, &frame);
                    }
                    Err(TrySendError::Disconnected(_)) => return,
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(IDLE_POLL);
            }
            Err(_) => {
                // Transient accept errors (e.g. ECONNABORTED): back off
                // and keep listening.
                std::thread::sleep(IDLE_POLL);
            }
        }
    }
    // Dropping `pool` here disconnects the channel; workers drain what
    // was queued and exit.
}

fn worker_loop(
    rx: &Arc<Mutex<Receiver<TcpStream>>>,
    state: &ServeState,
    stop: &AtomicBool,
    slow_query: Duration,
) {
    loop {
        // Hold the lock only for the receive itself, so the pool keeps
        // feeding other workers while this one serves a connection.
        let next = {
            let rx = rx.lock().unwrap_or_else(PoisonError::into_inner);
            rx.recv_timeout(IDLE_POLL)
        };
        match next {
            Ok(stream) => {
                // Best-effort: a connection failing mid-serve must never
                // take the worker down.
                serve_connection(stream, state, stop, slow_query);
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Serves one connection until the peer closes, the stream desyncs, or
/// shutdown. Infallible by construction: every internal failure either
/// becomes an error frame or ends this connection only.
///
/// Every request gets a per-request span timeline (decode → answer →
/// encode+write), fed into the per-phase latency metrics; a request whose
/// total reaches `slow_query` lands the full timeline in the flight
/// recorder. Trace ids: a client-sent id is echoed on the reply (success
/// or error); a request without one — including one that fails decoding —
/// gets a server-assigned id echoed back.
fn serve_connection(
    mut stream: TcpStream,
    state: &ServeState,
    stop: &AtomicBool,
    slow_query: Duration,
) {
    loop {
        match read_packet(&mut stream) {
            Ok(Packet::Frame(frame)) => {
                let start = Instant::now();
                let decoded = Request::decode_traced(&frame);
                let decode_elapsed = start.elapsed();
                let trace = match &decoded {
                    Ok((_, Some(t))) => *t,
                    _ => state.new_trace(),
                };
                let (verb, reply) = match decoded {
                    Ok((req, _)) => {
                        let reply = match state.answer(&req) {
                            Ok(resp) => resp.encode_traced(Some(trace)),
                            Err(err) => err.encode_traced(Some(trace)),
                        };
                        (req.verb_name(), reply)
                    }
                    Err(err) => ("undecodable", err.encode_traced(Some(trace))),
                };
                let answer_elapsed = start.elapsed() - decode_elapsed;
                let encode_start = Instant::now();
                if write_packet(&mut stream, &reply).is_err() {
                    return;
                }
                let encode_elapsed = encode_start.elapsed();
                let total = start.elapsed();
                state.phase_latency("decode").record(decode_elapsed);
                state.phase_latency("answer").record(answer_elapsed);
                state.phase_latency("encode").record(encode_elapsed);
                if total >= slow_query {
                    state.recorder().record(EventKind::SlowQuery {
                        verb: verb.to_string(),
                        trace: Some(trace),
                        decode_us: elapsed_us(decode_elapsed),
                        answer_us: elapsed_us(answer_elapsed),
                        encode_us: elapsed_us(encode_elapsed),
                        total_us: elapsed_us(total),
                    });
                }
            }
            Ok(Packet::Http(sniffed)) => {
                answer_http_stray(&mut stream, sniffed);
                return;
            }
            Ok(Packet::BadLength(len)) => {
                // The stream is desynchronized; one final structured
                // error, then close — still with a server-assigned trace
                // so the client can quote it.
                let frame = WireError::new(
                    ErrorCode::MalformedFrame,
                    format!("illegal frame length {len}; closing"),
                )
                .encode_traced(Some(state.new_trace()));
                let _ = write_packet(&mut stream, &frame);
                return;
            }
            Ok(Packet::Closed) => return,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Idle connection: keep waiting unless we're shutting
                // down. (A timeout *inside* a frame surfaces as
                // UnexpectedEof or a failed read_exact and ends the
                // connection below.)
                if stop.load(Ordering::Relaxed) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Saturating microseconds for an event timeline field.
fn elapsed_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// A human pointed an HTTP client at the binary port. Drain their headers
/// (so close sends FIN, not RST), then answer with a readable error. The
/// bounded line reader is shared with the obs scrape endpoint.
fn answer_http_stray(stream: &mut TcpStream, sniffed: [u8; 4]) {
    let _method = String::from_utf8_lossy(&sniffed);
    for _ in 0..64 {
        match streamhist_obs::read_line_bounded(stream, streamhist_obs::MAX_LINE) {
            Ok(line) if line.is_empty() => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }
    let body = "this is the streamhist binary query port, not HTTP; \
                use the streamhist-serve client\n";
    let response = format!(
        "HTTP/1.1 400 Bad Request\r\nContent-Type: text/plain; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}
