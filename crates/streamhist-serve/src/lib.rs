//! `streamhist-serve`: the query path on the wire.
//!
//! Everything before this crate answers queries in-process: build a
//! [`ShardedFixedWindow`](streamhist_stream::ShardedFixedWindow), call
//! `snapshot_global()`, evaluate a
//! [`Query`](streamhist_core::Query) against the gathered histogram. This
//! crate puts that surface on a socket:
//!
//! * [`protocol`] — the framed request/response wire format. Each message
//!   is one checkpoint-codec frame (CRC-32, bounded counts, trailing-byte
//!   rejection) behind a `u32-le` length prefix, so the wire inherits the
//!   corruption-rejection guarantees the recovery suite already fuzzes.
//! * [`ServeState`] — evaluates decoded requests against a live
//!   [`FleetHandle`](streamhist_stream::FleetHandle) (index-domain verbs)
//!   and serve-side GK/MRL sketches (value-domain verbs), with per-verb
//!   counters and latency recorders in a
//!   [`MetricsRegistry`](streamhist_obs::MetricsRegistry).
//! * [`QueryServer`] — nonblocking accept loop plus a bounded worker
//!   pool. Malformed input earns a structured error frame; nothing a peer
//!   sends can panic, hang, or silently drop the connection.
//! * [`ServeClient`] — the blocking reference client.
//!
//! # Quick start
//!
//! ```
//! use std::sync::Arc;
//! use streamhist_obs::MetricsRegistry;
//! use streamhist_serve::{QuantileMethod, QueryServer, ServeClient, ServeState};
//! use streamhist_stream::{FleetHandle, ShardedFixedWindow};
//!
//! let fleet = FleetHandle::new(ShardedFixedWindow::new(2, 64, 8, 0.1));
//! let state = ServeState::new(fleet, Arc::new(MetricsRegistry::new()));
//! for i in 0..500u64 {
//!     state.ingest(i, (i % 10) as f64).unwrap();
//! }
//! let server = QueryServer::start("127.0.0.1:0", state, 2).unwrap();
//!
//! let mut client = ServeClient::connect(server.local_addr()).unwrap();
//! let sum = client.range_sum(0, 9).unwrap();
//! assert!(sum.is_finite());
//! let median = client.quantile(QuantileMethod::Gk, 0.5).unwrap();
//! assert!((0.0..=9.0).contains(&median));
//! // Malformed queries come back as answers, not hangups:
//! assert!(client.range_sum(9, 3).is_err());
//! // ...and the connection is still usable afterwards.
//! assert!(client.point(0).is_ok());
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;
pub mod state;

pub use client::{ClientError, RetryBudget, ServeClient};
pub use protocol::{
    decode_event, encode_event, ErrorCode, Packet, QuantileMethod, Request, Response, WireError,
    EVENTS_PAGE_MAX, MAX_FRAME, MIN_FRAME,
};
pub use server::{QueryServer, ServerOptions};
pub use state::ServeState;
