//! Server-side request evaluation: one [`ServeState`] owns everything a
//! connection worker needs to answer a decoded [`Request`].
//!
//! Index-domain verbs (`range_sum` / `range_avg` / `point` /
//! `range_count`) are answered against the fleet-global gathered snapshot
//! ([`FleetHandle::snapshot_global`]), so their staleness contract is the
//! fleet's: the snapshot reflects every record the workers had *accepted*
//! when the gather barrier ran, and generation caching means repeated
//! queries between ingests are free. Value-domain verbs (`quantile` /
//! `selectivity`) are answered from serve-side sketches (a
//! [`GkSummary`] and an [`MrlSummary`]) fed by this state's own ingest
//! helpers — the positional histogram cannot answer them, and the paper's
//! quantile substrates can.
//!
//! Every failure becomes a structured [`WireError`]; nothing a request
//! can carry reaches a panic. The three load-bearing guards:
//!
//! * [`Query::validate`] runs against the snapshot's domain before any
//!   evaluation (inverted and out-of-domain ranges are data, not bugs);
//! * quantile/selectivity arguments are checked (finite, `phi` in
//!   `[0, 1]`, non-empty sketch) before touching the sketches, whose
//!   trait methods are allowed to panic on misuse;
//! * every scalar answer is checked finite before encoding, because the
//!   wire codec rejects non-finite `f64`s by design.

use crate::protocol::{ErrorCode, QuantileMethod, Request, Response, WireError, EVENTS_PAGE_MAX};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};
use streamhist_core::StreamhistError;
use streamhist_obs::{EventKind, FlightRecorder, LatencyRecorder, MetricsRegistry};
use streamhist_quantile::{GkSummary, MrlSummary, QuantileSummary};
use streamhist_stream::{
    Coverage, FleetHandle, ShardHealth, ShardState, SnapshotPolicy, SupervisorHandle,
};

/// Default GK rank-error bound for the serve-side sketch.
pub const DEFAULT_GK_EPS: f64 = 0.01;
/// Default MRL buffer width (must be even and `>= 2`).
pub const DEFAULT_MRL_K: usize = 64;
/// Liveness-ping deadline used when a `health` request arrives on a
/// server with no supervisor attached.
const HEALTH_PING_TIMEOUT: Duration = Duration::from_millis(100);

/// Shared server state: the fleet seam, the value-domain sketches, the
/// checkpoint save slot, and the per-verb telemetry. Cheap to clone
/// (everything inside is shared).
#[derive(Clone)]
pub struct ServeState {
    fleet: FleetHandle,
    gk: Arc<Mutex<GkSummary>>,
    mrl: Arc<Mutex<MrlSummary>>,
    /// The most recent `checkpoint_all` save, kept in memory so an admin
    /// client can trigger durability without the server needing
    /// filesystem access.
    save: Arc<Mutex<Option<Vec<u8>>>>,
    registry: Arc<MetricsRegistry>,
    /// How histogram verbs gather the fleet-global snapshot. `Strict`
    /// (the default) errors on any dead shard; `Degraded` answers from
    /// the live subset and reports the coverage honestly.
    policy: SnapshotPolicy,
    /// The supervisor's view, when one is running — the `health` verb
    /// answers from its state machine instead of synthesizing pings.
    supervisor: Option<SupervisorHandle>,
    /// The fleet's flight recorder: the `events` verb reads it, and the
    /// serve layer lands slow-query timelines and shed-load events in it.
    recorder: Arc<FlightRecorder>,
    /// Counter behind server-assigned trace ids for requests that arrive
    /// without one (see the protocol module docs).
    next_trace: Arc<AtomicU64>,
}

impl ServeState {
    /// Builds a state over `fleet` with default sketch parameters,
    /// registering its metrics in `registry`.
    #[must_use]
    pub fn new(fleet: FleetHandle, registry: Arc<MetricsRegistry>) -> Self {
        Self::with_sketches(fleet, registry, DEFAULT_GK_EPS, DEFAULT_MRL_K)
    }

    /// Builds a state with explicit sketch parameters.
    ///
    /// # Panics
    ///
    /// As [`GkSummary::new`] / [`MrlSummary::new`]: `eps` must be in
    /// `(0, 1)` and `k` even and `>= 2`. These are operator
    /// configuration, not wire input, so the constructor contract is the
    /// sketches' own.
    #[must_use]
    pub fn with_sketches(
        fleet: FleetHandle,
        registry: Arc<MetricsRegistry>,
        eps: f64,
        k: usize,
    ) -> Self {
        let recorder = fleet.recorder();
        Self {
            fleet,
            gk: Arc::new(Mutex::new(GkSummary::new(eps))),
            mrl: Arc::new(Mutex::new(MrlSummary::new(k))),
            save: Arc::new(Mutex::new(None)),
            registry,
            policy: SnapshotPolicy::Strict,
            supervisor: None,
            recorder,
            next_trace: Arc::new(AtomicU64::new(1)),
        }
    }

    /// Sets the gather policy for histogram verbs. With
    /// [`SnapshotPolicy::Degraded`], a dead or quarantined shard no
    /// longer fails the query: the answer comes from the live subset and
    /// every scalar response carries the resulting [`Coverage`].
    #[must_use]
    pub fn with_policy(mut self, policy: SnapshotPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Attaches a supervisor's handle so the `health` verb reports its
    /// live state machine (instead of synthesizing from one-off pings).
    #[must_use]
    pub fn with_supervisor(mut self, supervisor: SupervisorHandle) -> Self {
        self.supervisor = Some(supervisor);
        self
    }

    /// The gather policy histogram verbs run under.
    #[must_use]
    pub fn policy(&self) -> SnapshotPolicy {
        self.policy
    }

    /// The fleet handle (for admin paths outside the wire, e.g. the CLI
    /// host's own ingest loop).
    #[must_use]
    pub fn fleet(&self) -> &FleetHandle {
        &self.fleet
    }

    /// The metrics registry this state reports into.
    #[must_use]
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The fleet's flight recorder (shared with the supervisor and the
    /// durability uploader; also behind the `events` verb).
    #[must_use]
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// A fresh server-assigned trace id, for requests that arrive without
    /// one. Never 0, so a log line can print 0 for "untraced".
    #[must_use]
    pub fn new_trace(&self) -> u64 {
        self.next_trace.fetch_add(1, Ordering::Relaxed)
    }

    /// Bytes of the most recent on-demand checkpoint, if one was taken.
    #[must_use]
    pub fn last_checkpoint(&self) -> Option<Vec<u8>> {
        self.save
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Ingests one keyed record into the fleet *and* the value-domain
    /// sketches, keeping the two query surfaces in sync.
    ///
    /// # Errors
    ///
    /// [`StreamhistError::NonFiniteValue`] for NaN/inf (nothing is
    /// mutated); [`StreamhistError::CapacityExhausted`] if the routed
    /// shard's worker has died (the fleet error, re-described).
    pub fn ingest(&self, key: u64, v: f64) -> Result<(), StreamhistError> {
        if !v.is_finite() {
            return Err(StreamhistError::NonFiniteValue { value: v });
        }
        self.fleet
            .push(key, v)
            .map_err(|_| StreamhistError::InvalidParameter {
                param: "shard",
                message: "routed shard's worker has died; respawn it",
            })?;
        self.gk
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(v);
        self.mrl
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(v);
        Ok(())
    }

    /// Scatter-ingests a slab: the fleet sees it via
    /// [`FleetHandle::push_batch_scatter`], the sketches see every value.
    /// Non-finite values are rejected up front, all-or-nothing.
    ///
    /// # Errors
    ///
    /// As [`ServeState::ingest`].
    pub fn ingest_scatter(&self, values: &[f64]) -> Result<(), StreamhistError> {
        if let Some(&bad) = values.iter().find(|v| !v.is_finite()) {
            return Err(StreamhistError::NonFiniteValue { value: bad });
        }
        self.fleet
            .push_batch_scatter(values)
            .map_err(|_| StreamhistError::InvalidParameter {
                param: "shard",
                message: "a shard worker has died; respawn it",
            })?;
        let mut gk = self.gk.lock().unwrap_or_else(PoisonError::into_inner);
        let mut mrl = self.mrl.lock().unwrap_or_else(PoisonError::into_inner);
        for &v in values {
            gk.push(v);
            mrl.push(v);
        }
        Ok(())
    }

    /// Answers one request, recording the per-verb counter and latency.
    /// This is the connection workers' entry point.
    ///
    /// # Errors
    ///
    /// A structured [`WireError`] for the client; never panics on any
    /// decodable request.
    pub fn answer(&self, req: &Request) -> Result<Response, WireError> {
        let verb = req.verb_name();
        self.registry
            .counter_with(
                "streamhist_serve_requests_total",
                "Requests received, by verb.",
                &[("verb", verb)],
            )
            .inc();
        let start = Instant::now();
        let result = self.answer_inner(req);
        self.verb_latency(verb).record(start.elapsed());
        if let Err(e) = &result {
            self.registry
                .counter_with(
                    "streamhist_serve_errors_total",
                    "Error frames sent, by error code.",
                    &[("code", e.code.name())],
                )
                .inc();
        }
        result
    }

    /// The per-verb latency recorder (exposed so the load-test bench can
    /// read server-side p50/p99 after a run).
    #[must_use]
    pub fn verb_latency(&self, verb: &str) -> Arc<LatencyRecorder> {
        self.registry.latency_with(
            "streamhist_serve_request_latency_ns",
            "Request handling latency, by verb.",
            &[("verb", verb)],
        )
    }

    /// The per-phase latency recorder (decode / answer / encode), fed by
    /// the connection loop's span timeline.
    #[must_use]
    pub fn phase_latency(&self, phase: &str) -> Arc<LatencyRecorder> {
        self.registry.latency_with(
            "streamhist_serve_phase_latency_ns",
            "Request handling latency, by phase (decode/answer/encode).",
            &[("phase", phase)],
        )
    }

    fn answer_inner(&self, req: &Request) -> Result<Response, WireError> {
        if let Some(query) = req.as_query() {
            let (hist, _stats, coverage) =
                self.fleet.snapshot_global_with(self.policy).map_err(|e| {
                    let detail = match self.policy {
                        SnapshotPolicy::Strict => {
                            format!("shard {} worker has died; respawn it", e.shard)
                        }
                        SnapshotPolicy::Degraded { min_coverage } => format!(
                            "shard {} is down and live coverage is below the {min_coverage} floor",
                            e.shard
                        ),
                    };
                    WireError::new(ErrorCode::ShardDead, detail)
                })?;
            query
                .validate(hist.domain_len())
                .map_err(|e| WireError::new(ErrorCode::InvalidQuery, e.to_string()))?;
            let value = query
                .try_estimate(&*hist)
                .map_err(|e| WireError::new(ErrorCode::InvalidQuery, e.to_string()))?;
            return self.scalar(req, value, coverage);
        }
        match *req {
            Request::Quantile { method, phi } => {
                if !phi.is_finite() || !(0.0..=1.0).contains(&phi) {
                    return Err(WireError::new(
                        ErrorCode::InvalidQuery,
                        "quantile phi must be finite and in [0, 1]",
                    ));
                }
                let value = match method {
                    QuantileMethod::Gk => {
                        let gk = self.gk.lock().unwrap_or_else(PoisonError::into_inner);
                        if gk.count() == 0 {
                            return Err(self.empty_sketch());
                        }
                        gk.quantile(phi)
                    }
                    QuantileMethod::Mrl => {
                        let mrl = self.mrl.lock().unwrap_or_else(PoisonError::into_inner);
                        if mrl.count() == 0 {
                            return Err(self.empty_sketch());
                        }
                        mrl.quantile(phi)
                    }
                };
                self.scalar(req, value, self.sketch_coverage())
            }
            Request::Selectivity { lo, hi } => {
                if !lo.is_finite() || !hi.is_finite() {
                    return Err(WireError::new(
                        ErrorCode::InvalidQuery,
                        "selectivity bounds must be finite",
                    ));
                }
                if lo > hi {
                    return Err(WireError::new(
                        ErrorCode::InvalidQuery,
                        "inverted selectivity range (lo > hi)",
                    ));
                }
                let gk = self.gk.lock().unwrap_or_else(PoisonError::into_inner);
                let n = gk.count();
                if n == 0 {
                    return Err(self.empty_sketch());
                }
                // Fraction of ingested values v with lo < v <= hi,
                // estimated from GK ranks; clamped because each rank
                // carries eps*n error independently.
                let below_hi = gk.rank(hi) as f64;
                let below_lo = gk.rank(lo) as f64;
                #[allow(clippy::cast_precision_loss)]
                let value = ((below_hi - below_lo) / n as f64).clamp(0.0, 1.0);
                drop(gk);
                self.scalar(req, value, self.sketch_coverage())
            }
            Request::ShardStats { shard } => {
                let metrics = self
                    .fleet
                    .metrics(shard)
                    .map_err(|e| WireError::new(ErrorCode::InvalidQuery, e.to_string()))?;
                Ok(Response::ShardStats {
                    shard,
                    shards: self.fleet.shards(),
                    metrics,
                })
            }
            Request::RespawnShard { shard } => {
                let report = self
                    .fleet
                    .respawn_shard(shard)
                    .map_err(|e| WireError::new(ErrorCode::InvalidQuery, e.to_string()))?;
                // Manual (admin-verb) respawns are recorded here; the
                // supervisor records its own restarts, and the fleet's
                // respawn primitive itself stays silent so neither path
                // double-counts.
                self.recorder.record(EventKind::ShardRestarted {
                    shard,
                    restored_len: report.restored_len,
                    lost: report.lost_since_checkpoint,
                });
                Ok(Response::Respawned {
                    restored_len: report.restored_len,
                    lost_since_checkpoint: report.lost_since_checkpoint,
                })
            }
            Request::CheckpointAll => {
                let bytes = self
                    .fleet
                    .checkpoint_all()
                    .map_err(|e| WireError::new(ErrorCode::Internal, e.to_string()))?;
                let len = bytes.len() as u64;
                *self.save.lock().unwrap_or_else(PoisonError::into_inner) = Some(bytes);
                Ok(Response::Checkpointed { bytes: len })
            }
            Request::WalStatus => Ok(Response::WalStatus(self.fleet.wal_status())),
            Request::Health => Ok(self.health()),
            Request::Events { from } => Ok(Response::Events {
                recorded: self.recorder.recorded(),
                events: self.recorder.events_from(from, EVENTS_PAGE_MAX),
            }),
            // as_query() handled these above.
            Request::RangeSum { .. }
            | Request::RangeAvg { .. }
            | Request::Point { .. }
            | Request::RangeCount { .. } => unreachable!("histogram verbs handled via as_query"),
        }
    }

    /// Answers the `health` verb. With a supervisor attached the entries
    /// are its live state machine; without one the server synthesizes
    /// Live/Dead from one-off liveness pings (no failure history —
    /// `consecutive_failures` is 0 and `restarts` comes from each shard's
    /// respawn counter).
    fn health(&self) -> Response {
        if let Some(sup) = &self.supervisor {
            return Response::Health {
                supervised: true,
                shards: sup.health(),
            };
        }
        let shards = (0..self.fleet.shards())
            .map(|shard| {
                let alive = self.fleet.ping(shard, HEALTH_PING_TIMEOUT).unwrap_or(false);
                ShardHealth {
                    shard,
                    state: if alive {
                        ShardState::Live
                    } else {
                        ShardState::Dead
                    },
                    consecutive_failures: 0,
                    restarts: self.fleet.metrics(shard).map_or(0, |m| m.respawns),
                }
            })
            .collect();
        Response::Health {
            supervised: false,
            shards,
        }
    }

    /// Coverage for a sketch-backed answer: the serve-side sketches are
    /// process-local and fed synchronously by `ingest`, so they never
    /// degrade with the fleet — every value they were fed is represented.
    fn sketch_coverage(&self) -> Coverage {
        let shards = self.fleet.shards();
        let n = self
            .gk
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .count() as u64;
        Coverage {
            shards_included: shards,
            shards_total: shards,
            records_represented: n,
            records_total: n,
        }
    }

    fn empty_sketch(&self) -> WireError {
        WireError::new(
            ErrorCode::InvalidQuery,
            "no values ingested yet; the sketch is empty",
        )
    }

    /// Wraps a scalar answer, refusing to put a non-finite value on the
    /// wire (the codec would reject it at encode time anyway — this turns
    /// that into a structured error instead of a malformed frame).
    fn scalar(&self, req: &Request, value: f64, coverage: Coverage) -> Result<Response, WireError> {
        if !value.is_finite() {
            return Err(WireError::new(
                ErrorCode::Internal,
                format!("{} produced a non-finite answer", req.verb_name()),
            ));
        }
        Ok(Response::Scalar {
            verb: req.wire_verb(),
            value,
            coverage,
        })
    }
}

impl std::fmt::Debug for ServeState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeState")
            .field("fleet", &self.fleet)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamhist_stream::ShardedFixedWindow;

    fn state_with_data(n: u64) -> ServeState {
        let fleet = FleetHandle::new(ShardedFixedWindow::new(2, 64, 8, 0.1));
        let state = ServeState::new(fleet, Arc::new(MetricsRegistry::new()));
        for i in 0..n {
            state.ingest(i, (i % 10) as f64).unwrap();
        }
        // Barrier: make sure the workers have drained before querying.
        let _ = state.fleet().snapshot_global();
        state
    }

    #[test]
    fn histogram_verbs_match_snapshot_answers() {
        let state = state_with_data(100);
        let (hist, _) = state.fleet().snapshot_global().unwrap();
        let wire = match state
            .answer(&Request::RangeSum { start: 0, end: 9 })
            .unwrap()
        {
            Response::Scalar {
                value,
                verb,
                coverage,
            } => {
                assert_eq!(verb, Request::RangeSum { start: 0, end: 9 }.wire_verb());
                assert!(coverage.is_complete(), "healthy strict fleet: {coverage}");
                assert_eq!(coverage.shards_total, 2);
                assert_eq!(coverage.records_total, 100);
                value
            }
            other => panic!("unexpected {other:?}"),
        };
        let direct = streamhist_core::Query::RangeSum { start: 0, end: 9 }
            .try_estimate(&*hist)
            .unwrap();
        assert!(
            (wire - direct).abs() == 0.0,
            "wire answer must be bit-identical to the in-process answer"
        );
    }

    #[test]
    fn malformed_queries_become_invalid_query_errors() {
        let state = state_with_data(50);
        for req in [
            Request::RangeSum { start: 9, end: 3 },
            Request::Point { idx: usize::MAX },
            Request::RangeAvg {
                start: 0,
                end: usize::MAX,
            },
            Request::Quantile {
                method: QuantileMethod::Gk,
                phi: 1.5,
            },
            Request::Quantile {
                method: QuantileMethod::Mrl,
                phi: f64::NAN,
            },
            Request::Selectivity { lo: 5.0, hi: 1.0 },
            Request::Selectivity {
                lo: f64::NEG_INFINITY,
                hi: 0.0,
            },
            Request::ShardStats { shard: 99 },
            Request::RespawnShard { shard: 99 },
        ] {
            let err = state.answer(&req).expect_err(req.verb_name());
            assert_eq!(err.code, ErrorCode::InvalidQuery, "{req:?} -> {err}");
        }
    }

    #[test]
    fn empty_sketches_reject_value_domain_queries() {
        let fleet = FleetHandle::new(ShardedFixedWindow::new(1, 16, 2, 0.5));
        let state = ServeState::new(fleet, Arc::new(MetricsRegistry::new()));
        for req in [
            Request::Quantile {
                method: QuantileMethod::Gk,
                phi: 0.5,
            },
            Request::Selectivity { lo: 0.0, hi: 1.0 },
        ] {
            let err = state.answer(&req).unwrap_err();
            assert_eq!(err.code, ErrorCode::InvalidQuery);
        }
    }

    #[test]
    fn quantile_and_selectivity_track_the_ingested_distribution() {
        let state = state_with_data(1000);
        let median = match state
            .answer(&Request::Quantile {
                method: QuantileMethod::Gk,
                phi: 0.5,
            })
            .unwrap()
        {
            Response::Scalar { value, .. } => value,
            other => panic!("unexpected {other:?}"),
        };
        assert!((0.0..=9.0).contains(&median), "median {median}");
        let sel = match state
            .answer(&Request::Selectivity { lo: -0.5, hi: 4.0 })
            .unwrap()
        {
            Response::Scalar { value, .. } => value,
            other => panic!("unexpected {other:?}"),
        };
        // Values 0..=4 of 0..=9, uniformly: about half.
        assert!((0.3..=0.7).contains(&sel), "selectivity {sel}");
    }

    #[test]
    fn admin_verbs_roundtrip_through_state() {
        let state = state_with_data(64);
        match state.answer(&Request::ShardStats { shard: 0 }).unwrap() {
            Response::ShardStats { shard, shards, .. } => {
                assert_eq!(shard, 0);
                assert_eq!(shards, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        match state.answer(&Request::CheckpointAll).unwrap() {
            Response::Checkpointed { bytes } => {
                assert!(bytes > 0);
                assert_eq!(state.last_checkpoint().unwrap().len() as u64, bytes);
            }
            other => panic!("unexpected {other:?}"),
        }
        match state.answer(&Request::RespawnShard { shard: 1 }).unwrap() {
            Response::Respawned { .. } => {}
            other => panic!("unexpected {other:?}"),
        }
        match state.answer(&Request::WalStatus).unwrap() {
            Response::WalStatus(status) => {
                assert!(!status.enabled, "test fleet has no durability pipeline");
                assert_eq!(status.segments_written, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unsupervised_health_synthesizes_live_and_dead_from_pings() {
        let state = state_with_data(32);
        state.fleet().inject_worker_panic(1).unwrap().unwrap();
        // Barrier: a failed ping proves the worker exited.
        assert!(!state
            .fleet()
            .ping(1, std::time::Duration::from_secs(5))
            .unwrap());
        match state.answer(&Request::Health).unwrap() {
            Response::Health { supervised, shards } => {
                assert!(!supervised, "no supervisor attached");
                assert_eq!(shards.len(), 2);
                assert_eq!(shards[0].state, ShardState::Live);
                assert_eq!(shards[1].state, ShardState::Dead);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn degraded_policy_answers_over_a_dead_shard_with_honest_coverage() {
        let fleet = FleetHandle::new(ShardedFixedWindow::new(2, 64, 8, 0.1));
        let strict = ServeState::new(fleet, Arc::new(MetricsRegistry::new()));
        let degraded = strict
            .clone()
            .with_policy(SnapshotPolicy::Degraded { min_coverage: 0.25 });
        for i in 0..100u64 {
            strict.ingest(i, (i % 10) as f64).unwrap();
        }
        let _ = strict.fleet().snapshot_global();
        strict.fleet().inject_worker_panic(1).unwrap().unwrap();
        assert!(!strict
            .fleet()
            .ping(1, std::time::Duration::from_secs(5))
            .unwrap());
        // Advance the live shard so the cached healthy snapshot is stale
        // and the query is forced into a real gather. The per-shard
        // snapshot is a queue barrier: the push is queued asynchronously,
        // and without the barrier the strict gather below can run before
        // the worker bumps its accepted counter, see a fresh-looking
        // cache, and serve the stale healthy snapshot.
        strict.fleet().push(0, 1.0).unwrap();
        strict.fleet().snapshot_shard(0).unwrap().unwrap();

        let err = strict
            .answer(&Request::RangeSum { start: 0, end: 0 })
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::ShardDead, "strict policy must fail");

        // 0..=usize::MAX-1 is out of domain for the shrunken snapshot too,
        // so query something the live shard can answer.
        match degraded
            .answer(&Request::RangeSum { start: 0, end: 0 })
            .unwrap()
        {
            Response::Scalar { coverage, .. } => {
                assert_eq!(coverage.shards_included, 1);
                assert_eq!(coverage.shards_total, 2);
                assert_eq!(coverage.records_total, 101);
                assert!(
                    coverage.records_represented < 101,
                    "dead shard's records must not be claimed: {coverage}"
                );
                assert!(!coverage.is_complete());
            }
            other => panic!("unexpected {other:?}"),
        }

        // A floor above what the live shard holds turns the degraded
        // answer back into a structured error.
        let floored = strict
            .clone()
            .with_policy(SnapshotPolicy::Degraded { min_coverage: 0.99 });
        let err = floored
            .answer(&Request::RangeSum { start: 0, end: 0 })
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::ShardDead);
    }

    #[test]
    fn sketch_verbs_report_complete_coverage() {
        let state = state_with_data(50);
        match state
            .answer(&Request::Quantile {
                method: QuantileMethod::Gk,
                phi: 0.5,
            })
            .unwrap()
        {
            Response::Scalar { coverage, .. } => {
                assert!(coverage.is_complete());
                assert_eq!(coverage.records_total, 50);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn events_verb_pages_the_recorder_and_respawn_is_recorded() {
        let state = state_with_data(16);
        match state.answer(&Request::Events { from: 0 }).unwrap() {
            Response::Events { recorded, events } => {
                assert_eq!(recorded, 0, "fresh fleet has no events");
                assert!(events.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
        state.answer(&Request::RespawnShard { shard: 0 }).unwrap();
        match state.answer(&Request::Events { from: 0 }).unwrap() {
            Response::Events { recorded, events } => {
                assert_eq!(recorded, 1);
                assert_eq!(events.len(), 1);
                assert!(
                    matches!(events[0].kind, EventKind::ShardRestarted { shard: 0, .. }),
                    "{events:?}"
                );
                // Paging past the end is empty but `recorded` still tells
                // the client where the stream stands.
                let next = events[0].seq + 1;
                match state.answer(&Request::Events { from: next }).unwrap() {
                    Response::Events { recorded, events } => {
                        assert_eq!(recorded, 1);
                        assert!(events.is_empty());
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ingest_rejects_non_finite_before_mutating() {
        let state = state_with_data(0);
        assert!(state.ingest(1, f64::NAN).is_err());
        assert!(state.ingest_scatter(&[1.0, f64::INFINITY]).is_err());
        assert!(matches!(
            state
                .answer(&Request::Quantile {
                    method: QuantileMethod::Gk,
                    phi: 0.5
                })
                .unwrap_err()
                .code,
            ErrorCode::InvalidQuery
        ));
    }
}
