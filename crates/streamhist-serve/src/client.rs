//! A blocking reference client for the wire protocol.
//!
//! [`ServeClient`] owns one connection and issues one request at a time —
//! the protocol is strictly request/response, so pipelining is a
//! non-goal. Per-verb convenience methods cover the whole protocol; the
//! generic [`call`](ServeClient::call) takes any [`Request`].
//!
//! Server-sent error frames surface as [`ClientError::Server`] — they are
//! *answers*, distinct from transport failures ([`ClientError::Io`]) and
//! from frames that fail local validation ([`ClientError::Protocol`]).

use crate::protocol::{
    read_packet, write_packet, ErrorCode, Packet, QuantileMethod, Request, Response, WireError,
};
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};
use streamhist_core::checkpoint::tag;
use streamhist_core::StreamhistError;
use streamhist_obs::Event;
use streamhist_stream::{Coverage, ShardHealth, ShardMetrics};

/// Ceiling on one retry backoff step, before jitter.
const RETRY_BACKOFF_CAP: Duration = Duration::from_millis(250);

/// Deterministic jitter fraction in `[0, 0.5)` — splitmix64 finalizer
/// over `(seed, attempt)`, the same construction the durability layer's
/// store retries use, so retry timing is reproducible in tests.
fn jitter_fraction(seed: u64, attempt: u32) -> f64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(u64::from(attempt));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    #[allow(clippy::cast_precision_loss)]
    let f = (z >> 11) as f64 / (1u64 << 53) as f64;
    f * 0.5
}

/// A total-deadline retry policy for [`ServeClient::call`].
///
/// Retries apply only to errors that cannot have mutated server state —
/// transport failures and [`ErrorCode::Overloaded`] shed frames — and
/// only to idempotent read verbs (queries, `shard_stats`, `wal_status`,
/// `health`). Admin mutations (`respawn_shard`, `checkpoint_all`) are
/// never retried: a lost reply leaves their effect unknown, and replaying
/// them is the caller's decision. Backoff is capped exponential with
/// deterministic jitter seeded from `seed`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryBudget {
    /// Total wall-clock budget across all attempts, measured from the
    /// first send. When the next backoff would cross it, the last error
    /// is returned instead.
    pub deadline: Duration,
    /// First backoff step (doubled per attempt, capped at 250ms).
    pub backoff_start: Duration,
    /// Jitter seed — fix it for reproducible retry timing.
    pub seed: u64,
}

impl Default for RetryBudget {
    fn default() -> Self {
        Self {
            deadline: Duration::from_secs(2),
            backoff_start: Duration::from_millis(5),
            seed: 0,
        }
    }
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, peer hung up).
    Io(io::Error),
    /// The server answered with a structured error frame.
    Server(WireError),
    /// The server's bytes failed frame validation on our side.
    Protocol(StreamhistError),
    /// The server answered with a response of the wrong shape for the
    /// request (e.g. shard stats to a scalar query).
    UnexpectedResponse(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "transport error: {e}"),
            Self::Server(e) => write!(f, "server error: {e}"),
            Self::Protocol(e) => write!(f, "protocol error: {e}"),
            Self::UnexpectedResponse(what) => {
                write!(f, "unexpected response shape: wanted {what}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// One connection to a [`QueryServer`](crate::QueryServer).
#[derive(Debug)]
pub struct ServeClient {
    stream: TcpStream,
    peer: SocketAddr,
    timeout: Duration,
    budget: Option<RetryBudget>,
    retries: u64,
    /// Trace id attached to every outgoing request (see the protocol
    /// module docs); `None` sends untraced requests and lets the server
    /// assign ids.
    trace: Option<u64>,
    /// Trace id on the most recent decoded reply (echoed by the server,
    /// whether the call succeeded or returned a server error frame).
    last_trace: Option<u64>,
}

impl ServeClient {
    /// Connects with a 5-second default I/O deadline.
    ///
    /// # Errors
    ///
    /// The connect/configure error.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::connect_with_timeout(addr, Duration::from_secs(5))
    }

    /// Connects with an explicit per-operation read/write deadline.
    ///
    /// # Errors
    ///
    /// The connect/configure error.
    pub fn connect_with_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let peer = stream.peer_addr()?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            peer,
            timeout,
            budget: None,
            retries: 0,
            trace: None,
            last_trace: None,
        })
    }

    /// Sets (or clears) the trace id attached to every subsequent
    /// request. The server echoes it byte-identically on the reply;
    /// retries of one call re-send the same id.
    pub fn set_trace(&mut self, trace: Option<u64>) {
        self.trace = trace;
    }

    /// The trace id echoed on the most recent decoded reply: the one this
    /// client sent, or the server-assigned id if the request went out
    /// untraced. `None` until a reply arrives (or when talking to a
    /// pre-trace server).
    #[must_use]
    pub fn last_trace(&self) -> Option<u64> {
        self.last_trace
    }

    /// Enables a [`RetryBudget`]: idempotent read verbs issued through
    /// [`call`](Self::call) (and the per-verb helpers) are retried on
    /// transport errors and `Overloaded` shed frames, reconnecting as
    /// needed, until the budget's deadline.
    #[must_use]
    pub fn with_retry_budget(mut self, budget: RetryBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Retries performed so far over this client's lifetime (a retry is
    /// any re-send after a retryable failure; the first attempt of a call
    /// is not a retry).
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Whether a lost or shed `req` can be safely re-sent: every query
    /// and status verb is a pure read. `respawn_shard` and
    /// `checkpoint_all` mutate the fleet and are excluded.
    fn idempotent(req: &Request) -> bool {
        !matches!(req, Request::RespawnShard { .. } | Request::CheckpointAll)
    }

    /// `true` for failures that justify a retry: the transport broke
    /// (nothing reached the server, or its reply was lost — safe for an
    /// idempotent read) or the server explicitly shed the request.
    fn retryable(result: &Result<Response, ClientError>) -> bool {
        match result {
            Err(ClientError::Io(_)) => true,
            Err(ClientError::Server(e)) => e.code == ErrorCode::Overloaded,
            _ => false,
        }
    }

    /// Re-dials the peer (the server closes connections it sheds, so a
    /// retry usually needs a fresh socket). On failure the old stream is
    /// kept; the next attempt surfaces its I/O error and the deadline
    /// still bounds the call.
    fn reconnect(&mut self) {
        if let Ok(fresh) = TcpStream::connect(self.peer) {
            if fresh.set_read_timeout(Some(self.timeout)).is_ok()
                && fresh.set_write_timeout(Some(self.timeout)).is_ok()
                && fresh.set_nodelay(true).is_ok()
            {
                self.stream = fresh;
            }
        }
    }

    /// Issues one request and reads its reply. With a
    /// [`RetryBudget`](Self::with_retry_budget) attached and an
    /// idempotent `req`, transport failures and `Overloaded` sheds are
    /// retried (with capped, jittered backoff) until the budget deadline.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        // Encode once: retries re-send the identical frame, so the trace
        // id ties every attempt of a call together in the server's log.
        let frame = req.encode_traced(self.trace);
        let Some(budget) = self.budget else {
            return self.call_raw_frame(&frame);
        };
        if !Self::idempotent(req) {
            return self.call_raw_frame(&frame);
        }
        let start = Instant::now();
        let mut attempt: u32 = 0;
        loop {
            let result = self.call_raw_frame(&frame);
            if !Self::retryable(&result) {
                return result;
            }
            let step = budget
                .backoff_start
                .saturating_mul(1u32 << attempt.min(10))
                .min(RETRY_BACKOFF_CAP);
            let sleep = step.mul_f64(1.0 + jitter_fraction(budget.seed, attempt));
            if start.elapsed() + sleep >= budget.deadline {
                return result;
            }
            std::thread::sleep(sleep);
            self.retries += 1;
            attempt += 1;
            self.reconnect();
        }
    }

    /// Sends an already-encoded (possibly deliberately corrupt) frame
    /// and reads the reply — the fuzz harness's entry point. A server
    /// error frame comes back as `Err(ClientError::Server(_))`, exactly
    /// like [`call`](Self::call).
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn call_raw_frame(&mut self, frame: &[u8]) -> Result<Response, ClientError> {
        write_packet(&mut self.stream, frame)?;
        let reply = match read_packet(&mut self.stream)? {
            Packet::Frame(reply) => reply,
            Packet::Closed => {
                return Err(ClientError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection before replying",
                )))
            }
            Packet::Http(_) | Packet::BadLength(_) => {
                return Err(ClientError::Protocol(StreamhistError::CorruptCheckpoint {
                    reason: "server reply is not a framed packet",
                }))
            }
        };
        // The third frame byte is the type tag; dispatch on it.
        match reply.get(2).copied() {
            Some(tag::SERVE_RESPONSE) => {
                let (resp, trace) =
                    Response::decode_traced(&reply).map_err(ClientError::Protocol)?;
                self.last_trace = trace;
                Ok(resp)
            }
            Some(tag::SERVE_ERROR) => {
                let (err, trace) =
                    WireError::decode_traced(&reply).map_err(ClientError::Protocol)?;
                self.last_trace = trace;
                Err(ClientError::Server(err))
            }
            _ => Err(ClientError::Protocol(StreamhistError::CorruptCheckpoint {
                reason: "reply frame has an unknown type tag",
            })),
        }
    }

    fn scalar(&mut self, req: &Request) -> Result<f64, ClientError> {
        self.call_scalar(req).map(|(value, _)| value)
    }

    /// Issues any scalar query verb and returns `(value, coverage)` — the
    /// coverage report says how much of the fleet's accepted data the
    /// answer stands on (always complete against a strict-policy server).
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn call_scalar(&mut self, req: &Request) -> Result<(f64, Coverage), ClientError> {
        match self.call(req)? {
            Response::Scalar {
                value, coverage, ..
            } => Ok((value, coverage)),
            _ => Err(ClientError::UnexpectedResponse("a scalar")),
        }
    }

    /// Estimated sum over the inclusive index range `[start, end]`.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn range_sum(&mut self, start: usize, end: usize) -> Result<f64, ClientError> {
        self.scalar(&Request::RangeSum { start, end })
    }

    /// Estimated average over the inclusive index range `[start, end]`.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn range_avg(&mut self, start: usize, end: usize) -> Result<f64, ClientError> {
        self.scalar(&Request::RangeAvg { start, end })
    }

    /// Estimated value at index `idx`.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn point(&mut self, idx: usize) -> Result<f64, ClientError> {
        self.scalar(&Request::Point { idx })
    }

    /// Number of positions in the inclusive index range `[start, end]`.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn range_count(&mut self, start: usize, end: usize) -> Result<f64, ClientError> {
        self.scalar(&Request::RangeCount { start, end })
    }

    /// The `phi`-quantile of the ingested value distribution.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn quantile(&mut self, method: QuantileMethod, phi: f64) -> Result<f64, ClientError> {
        self.scalar(&Request::Quantile { method, phi })
    }

    /// Estimated fraction of ingested values `v` with `lo < v <= hi`.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn selectivity(&mut self, lo: f64, hi: f64) -> Result<f64, ClientError> {
        self.scalar(&Request::Selectivity { lo, hi })
    }

    /// One shard's counters, plus the fleet's shard count.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn shard_stats(&mut self, shard: usize) -> Result<(usize, ShardMetrics), ClientError> {
        match self.call(&Request::ShardStats { shard })? {
            Response::ShardStats {
                shards, metrics, ..
            } => Ok((shards, metrics)),
            _ => Err(ClientError::UnexpectedResponse("shard stats")),
        }
    }

    /// Respawns one shard's worker; returns
    /// `(restored_len, lost_since_checkpoint)`.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn respawn_shard(&mut self, shard: usize) -> Result<(u64, u64), ClientError> {
        match self.call(&Request::RespawnShard { shard })? {
            Response::Respawned {
                restored_len,
                lost_since_checkpoint,
            } => Ok((restored_len, lost_since_checkpoint)),
            _ => Err(ClientError::UnexpectedResponse("a respawn report")),
        }
    }

    /// Checkpoints the whole fleet server-side; returns the save's size
    /// in bytes.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn checkpoint_all(&mut self) -> Result<u64, ClientError> {
        match self.call(&Request::CheckpointAll)? {
            Response::Checkpointed { bytes } => Ok(bytes),
            _ => Err(ClientError::UnexpectedResponse("a checkpoint report")),
        }
    }

    /// The fleet's durability (WAL / checkpoint-store) status.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn wal_status(&mut self) -> Result<streamhist_stream::WalStatus, ClientError> {
        match self.call(&Request::WalStatus)? {
            Response::WalStatus(status) => Ok(status),
            _ => Err(ClientError::UnexpectedResponse("a wal-status report")),
        }
    }

    /// Per-shard supervisor health; the flag is `true` when a supervisor
    /// is attached server-side (entries are its live state machine rather
    /// than synthesized pings).
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn health(&mut self) -> Result<(bool, Vec<ShardHealth>), ClientError> {
        match self.call(&Request::Health)? {
            Response::Health { supervised, shards } => Ok((supervised, shards)),
            _ => Err(ClientError::UnexpectedResponse("a health report")),
        }
    }

    /// One page of flight-recorder events with sequence number `>= from`;
    /// returns `(recorded, events)` where `recorded` is the server's
    /// total-ever count. Page by passing the last event's `seq + 1`.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn events(&mut self, from: u64) -> Result<(u64, Vec<Event>), ClientError> {
        match self.call(&Request::Events { from })? {
            Response::Events { recorded, events } => Ok((recorded, events)),
            _ => Err(ClientError::UnexpectedResponse("an events page")),
        }
    }

    /// Every event the server's recorder still retains from `from`
    /// onward, paging until exhausted; returns `(recorded, events)`.
    ///
    /// The drain is a *snapshot*: paging stops at the recorder's sequence
    /// watermark observed on the first page, so events recorded while the
    /// drain itself runs are left for the next call. Without the cutoff a
    /// server that records its own request handling (e.g. a zero
    /// slow-query threshold logging every `events` page) would feed the
    /// pager one fresh event per page, forever.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn events_all(&mut self, from: u64) -> Result<(u64, Vec<Event>), ClientError> {
        let (watermark, mut page) = self.events(from)?;
        let mut all = Vec::new();
        loop {
            let Some(last) = page.last() else {
                return Ok((watermark, all));
            };
            // The cursor advances past the page's raw tail before the
            // watermark filter, so it grows strictly every round.
            let next = last.seq + 1;
            all.extend(page.into_iter().filter(|e| e.seq < watermark));
            if next >= watermark {
                return Ok((watermark, all));
            }
            page = self.events(next)?.1;
        }
    }
}
