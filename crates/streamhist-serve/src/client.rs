//! A blocking reference client for the wire protocol.
//!
//! [`ServeClient`] owns one connection and issues one request at a time —
//! the protocol is strictly request/response, so pipelining is a
//! non-goal. Per-verb convenience methods cover the whole protocol; the
//! generic [`call`](ServeClient::call) takes any [`Request`].
//!
//! Server-sent error frames surface as [`ClientError::Server`] — they are
//! *answers*, distinct from transport failures ([`ClientError::Io`]) and
//! from frames that fail local validation ([`ClientError::Protocol`]).

use crate::protocol::{
    read_packet, write_packet, Packet, QuantileMethod, Request, Response, WireError,
};
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;
use streamhist_core::checkpoint::tag;
use streamhist_core::StreamhistError;
use streamhist_stream::ShardMetrics;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, peer hung up).
    Io(io::Error),
    /// The server answered with a structured error frame.
    Server(WireError),
    /// The server's bytes failed frame validation on our side.
    Protocol(StreamhistError),
    /// The server answered with a response of the wrong shape for the
    /// request (e.g. shard stats to a scalar query).
    UnexpectedResponse(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "transport error: {e}"),
            Self::Server(e) => write!(f, "server error: {e}"),
            Self::Protocol(e) => write!(f, "protocol error: {e}"),
            Self::UnexpectedResponse(what) => {
                write!(f, "unexpected response shape: wanted {what}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// One connection to a [`QueryServer`](crate::QueryServer).
#[derive(Debug)]
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    /// Connects with a 5-second default I/O deadline.
    ///
    /// # Errors
    ///
    /// The connect/configure error.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::connect_with_timeout(addr, Duration::from_secs(5))
    }

    /// Connects with an explicit per-operation read/write deadline.
    ///
    /// # Errors
    ///
    /// The connect/configure error.
    pub fn connect_with_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Issues one request and reads its reply.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.call_raw_frame(&req.encode())
    }

    /// Sends an already-encoded (possibly deliberately corrupt) frame
    /// and reads the reply — the fuzz harness's entry point. A server
    /// error frame comes back as `Err(ClientError::Server(_))`, exactly
    /// like [`call`](Self::call).
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn call_raw_frame(&mut self, frame: &[u8]) -> Result<Response, ClientError> {
        write_packet(&mut self.stream, frame)?;
        let reply = match read_packet(&mut self.stream)? {
            Packet::Frame(reply) => reply,
            Packet::Closed => {
                return Err(ClientError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection before replying",
                )))
            }
            Packet::Http(_) | Packet::BadLength(_) => {
                return Err(ClientError::Protocol(StreamhistError::CorruptCheckpoint {
                    reason: "server reply is not a framed packet",
                }))
            }
        };
        // The third frame byte is the type tag; dispatch on it.
        match reply.get(2).copied() {
            Some(tag::SERVE_RESPONSE) => Response::decode(&reply).map_err(ClientError::Protocol),
            Some(tag::SERVE_ERROR) => Err(ClientError::Server(
                WireError::decode(&reply).map_err(ClientError::Protocol)?,
            )),
            _ => Err(ClientError::Protocol(StreamhistError::CorruptCheckpoint {
                reason: "reply frame has an unknown type tag",
            })),
        }
    }

    fn scalar(&mut self, req: &Request) -> Result<f64, ClientError> {
        match self.call(req)? {
            Response::Scalar { value, .. } => Ok(value),
            _ => Err(ClientError::UnexpectedResponse("a scalar")),
        }
    }

    /// Estimated sum over the inclusive index range `[start, end]`.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn range_sum(&mut self, start: usize, end: usize) -> Result<f64, ClientError> {
        self.scalar(&Request::RangeSum { start, end })
    }

    /// Estimated average over the inclusive index range `[start, end]`.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn range_avg(&mut self, start: usize, end: usize) -> Result<f64, ClientError> {
        self.scalar(&Request::RangeAvg { start, end })
    }

    /// Estimated value at index `idx`.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn point(&mut self, idx: usize) -> Result<f64, ClientError> {
        self.scalar(&Request::Point { idx })
    }

    /// Number of positions in the inclusive index range `[start, end]`.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn range_count(&mut self, start: usize, end: usize) -> Result<f64, ClientError> {
        self.scalar(&Request::RangeCount { start, end })
    }

    /// The `phi`-quantile of the ingested value distribution.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn quantile(&mut self, method: QuantileMethod, phi: f64) -> Result<f64, ClientError> {
        self.scalar(&Request::Quantile { method, phi })
    }

    /// Estimated fraction of ingested values `v` with `lo < v <= hi`.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn selectivity(&mut self, lo: f64, hi: f64) -> Result<f64, ClientError> {
        self.scalar(&Request::Selectivity { lo, hi })
    }

    /// One shard's counters, plus the fleet's shard count.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn shard_stats(&mut self, shard: usize) -> Result<(usize, ShardMetrics), ClientError> {
        match self.call(&Request::ShardStats { shard })? {
            Response::ShardStats {
                shards, metrics, ..
            } => Ok((shards, metrics)),
            _ => Err(ClientError::UnexpectedResponse("shard stats")),
        }
    }

    /// Respawns one shard's worker; returns
    /// `(restored_len, lost_since_checkpoint)`.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn respawn_shard(&mut self, shard: usize) -> Result<(u64, u64), ClientError> {
        match self.call(&Request::RespawnShard { shard })? {
            Response::Respawned {
                restored_len,
                lost_since_checkpoint,
            } => Ok((restored_len, lost_since_checkpoint)),
            _ => Err(ClientError::UnexpectedResponse("a respawn report")),
        }
    }

    /// Checkpoints the whole fleet server-side; returns the save's size
    /// in bytes.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn checkpoint_all(&mut self) -> Result<u64, ClientError> {
        match self.call(&Request::CheckpointAll)? {
            Response::Checkpointed { bytes } => Ok(bytes),
            _ => Err(ClientError::UnexpectedResponse("a checkpoint report")),
        }
    }

    /// The fleet's durability (WAL / checkpoint-store) status.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn wal_status(&mut self) -> Result<streamhist_stream::WalStatus, ClientError> {
        match self.call(&Request::WalStatus)? {
            Response::WalStatus(status) => Ok(status),
            _ => Err(ClientError::UnexpectedResponse("a wal-status report")),
        }
    }
}
