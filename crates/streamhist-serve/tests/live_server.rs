//! End-to-end tests against a live [`QueryServer`]: correctness of every
//! verb over the wire, and the ISSUE's core robustness contract — any
//! byte sequence a client sends gets an error frame or a valid answer,
//! never a panic, never a hang, and (for well-framed garbage) never a
//! dropped connection.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;
use streamhist_obs::MetricsRegistry;
use streamhist_serve::{
    ClientError, ErrorCode, QuantileMethod, QueryServer, Request, RetryBudget, ServeClient,
    ServeState, ServerOptions,
};
use streamhist_stream::{
    FleetHandle, ShardState, ShardedFixedWindow, SnapshotPolicy, Supervisor, SupervisorOptions,
};

fn start_server(n: u64, workers: usize) -> (QueryServer, ServeState) {
    let fleet = FleetHandle::new(ShardedFixedWindow::new(2, 128, 8, 0.1));
    let state = ServeState::new(fleet, Arc::new(MetricsRegistry::new()));
    for i in 0..n {
        state.ingest(i, (i % 16) as f64).unwrap();
    }
    // Barrier so the snapshot below reflects everything ingested.
    state.fleet().snapshot_global().unwrap();
    let server = QueryServer::start("127.0.0.1:0", state.clone(), workers).unwrap();
    (server, state)
}

#[test]
fn wire_answers_are_bit_identical_to_in_process_answers() {
    let (server, state) = start_server(400, 2);
    let (hist, _) = state.fleet().snapshot_global().unwrap();
    let domain = hist.domain_len();
    assert!(domain > 0);
    let mut client = ServeClient::connect(server.local_addr()).unwrap();

    let cases = [
        streamhist_core::Query::RangeSum {
            start: 0,
            end: domain - 1,
        },
        streamhist_core::Query::RangeAvg {
            start: 1,
            end: domain / 2,
        },
        streamhist_core::Query::Point { idx: domain / 3 },
        streamhist_core::Query::RangeCount {
            start: 2,
            end: domain - 2,
        },
    ];
    for q in cases {
        let direct = q.try_estimate(&*hist).unwrap();
        let wire = match q {
            streamhist_core::Query::RangeSum { start, end } => client.range_sum(start, end),
            streamhist_core::Query::RangeAvg { start, end } => client.range_avg(start, end),
            streamhist_core::Query::Point { idx } => client.point(idx),
            streamhist_core::Query::RangeCount { start, end } => client.range_count(start, end),
        }
        .unwrap();
        assert_eq!(wire.to_bits(), direct.to_bits(), "{q:?}");
    }
    server.shutdown();
}

#[test]
fn value_domain_verbs_answer_over_the_wire() {
    let (server, _state) = start_server(1000, 2);
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    for method in [QuantileMethod::Gk, QuantileMethod::Mrl] {
        let q50 = client.quantile(method, 0.5).unwrap();
        assert!((0.0..=15.0).contains(&q50), "{method:?} median {q50}");
    }
    let sel = client.selectivity(-0.5, 7.0).unwrap();
    assert!((0.3..=0.7).contains(&sel), "selectivity {sel}");
    server.shutdown();
}

#[test]
fn admin_verbs_work_over_the_wire() {
    let (server, state) = start_server(200, 2);
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    let (shards, metrics) = client.shard_stats(0).unwrap();
    assert_eq!(shards, 2);
    assert!(metrics.pushes_accepted > 0);
    let bytes = client.checkpoint_all().unwrap();
    assert!(bytes > 0);
    assert_eq!(state.last_checkpoint().unwrap().len() as u64, bytes);
    let (restored, _lost) = client.respawn_shard(1).unwrap();
    // The fleet checkpoints periodically; the respawned shard restores
    // from whatever its latest checkpoint held (possibly nothing).
    let _ = restored;
    // The fleet still answers queries after the respawn.
    assert!(client.range_count(0, 10).is_ok());
    server.shutdown();
}

#[test]
fn invalid_queries_get_error_frames_and_the_connection_survives() {
    let (server, _state) = start_server(100, 2);
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    let bad = [
        (
            Request::RangeSum { start: 9, end: 3 },
            ErrorCode::InvalidQuery,
        ),
        (Request::Point { idx: usize::MAX }, ErrorCode::InvalidQuery),
        (
            Request::RangeAvg {
                start: 0,
                end: usize::MAX,
            },
            ErrorCode::InvalidQuery,
        ),
        (
            Request::Quantile {
                method: QuantileMethod::Gk,
                phi: 2.0,
            },
            ErrorCode::InvalidQuery,
        ),
        // A NaN argument is unrepresentable on the wire: the codec
        // refuses non-finite floats at decode time, so the server sees a
        // malformed frame, not an invalid query.
        (
            Request::Selectivity {
                lo: f64::NAN,
                hi: 1.0,
            },
            ErrorCode::MalformedFrame,
        ),
        (Request::ShardStats { shard: 1000 }, ErrorCode::InvalidQuery),
        (
            Request::RespawnShard { shard: 1000 },
            ErrorCode::InvalidQuery,
        ),
    ];
    for (req, expected) in bad {
        match client.call(&req) {
            Err(ClientError::Server(e)) => {
                assert_eq!(e.code, expected, "{req:?} -> {e}");
            }
            other => panic!("{req:?} should earn an error frame, got {other:?}"),
        }
        // The same connection still answers the next (valid) request.
        assert!(
            client.range_count(0, 5).is_ok(),
            "connection survived {req:?}"
        );
    }
    server.shutdown();
}

#[test]
fn fuzzed_frames_never_panic_or_hang_the_server() {
    let (server, _state) = start_server(64, 4);
    let addr = server.local_addr();
    let mut rng = StdRng::seed_from_u64(0x5EED_F8A3);

    // 1. Well-framed garbage: correct length prefix, corrupt contents.
    //    Contract: one error frame per frame, connection stays open.
    let mut client = ServeClient::connect(addr).unwrap();
    let template = Request::RangeSum { start: 1, end: 30 }.encode();
    for round in 0..200 {
        let mut frame = template.clone();
        let flips = rng.gen_range(1..4usize);
        for _ in 0..flips {
            let byte = rng.gen_range(0..frame.len());
            let bit = rng.gen_range(0..8u32);
            frame[byte] ^= 1u8 << bit;
        }
        match client.call_raw_frame(&frame) {
            Ok(_) | Err(ClientError::Server(_)) => {}
            other => panic!("round {round}: unexpected {other:?}"),
        }
    }
    // The connection survived 200 rounds of garbage.
    assert!(client.range_count(0, 5).is_ok());

    // 2. Truncated frames: the peer hangs up mid-frame. The server must
    //    neither panic nor leak the worker — a fresh connection works.
    for cut in [0usize, 1, 3, 4, 5, 9] {
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let mut wire = Vec::new();
        let len = u32::try_from(template.len()).unwrap();
        wire.extend_from_slice(&len.to_le_bytes());
        wire.extend_from_slice(&template);
        raw.write_all(&wire[..cut.min(wire.len())]).unwrap();
        drop(raw);
    }

    // 3. Pure random bytes, including illegal length prefixes.
    for _ in 0..50 {
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let n = rng.gen_range(1..64usize);
        let junk: Vec<u8> = (0..n).map(|_| rng.gen_range(0..=255u32) as u8).collect();
        let _ = raw.write_all(&junk);
        // Read whatever comes back (error frame or close); bounded by
        // the read timeout, so a hang fails the test.
        let mut sink = [0u8; 256];
        let _ = raw.read(&mut sink);
    }

    // After all of it the server still answers correctly.
    let mut client = ServeClient::connect(addr).unwrap();
    assert!(client.range_sum(0, 10).unwrap().is_finite());
    server.shutdown();
}

#[test]
fn stray_http_client_gets_a_readable_400() {
    let (server, _state) = start_server(10, 1);
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    raw.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    let mut out = String::new();
    raw.read_to_string(&mut out).unwrap();
    assert!(out.starts_with("HTTP/1.1 400"), "{out}");
    assert!(out.contains("binary query port"), "{out}");
    server.shutdown();
}

#[test]
fn concurrent_clients_share_the_worker_pool() {
    let (server, _state) = start_server(500, 4);
    let addr = server.local_addr();
    let threads: Vec<_> = (0..8)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).unwrap();
                for i in 0..50usize {
                    let hi = 1 + (i + t) % 40;
                    let v = client.range_sum(0, hi).unwrap();
                    assert!(v.is_finite());
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    server.shutdown();
}

#[test]
fn server_options_validate_the_io_deadline() {
    let fleet = FleetHandle::new(ShardedFixedWindow::new(1, 32, 4, 0.2));
    let state = ServeState::new(fleet, Arc::new(MetricsRegistry::new()));
    let err = QueryServer::start_with(
        "127.0.0.1:0",
        state.clone(),
        1,
        ServerOptions {
            io_timeout: Duration::from_micros(500),
            ..ServerOptions::default()
        },
    )
    .expect_err("sub-millisecond deadline must be rejected");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);

    // A custom (legal) deadline serves normally.
    let server = QueryServer::start_with(
        "127.0.0.1:0",
        state.clone(),
        1,
        ServerOptions {
            io_timeout: Duration::from_secs(2),
            ..ServerOptions::default()
        },
    )
    .unwrap();
    state.ingest(0, 1.0).unwrap();
    let _ = state.fleet().snapshot_global();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    assert!(client.range_count(0, 0).is_ok());
    server.shutdown();
}

#[test]
fn health_verb_reports_supervisor_state_end_to_end() {
    let fleet = FleetHandle::new(ShardedFixedWindow::new(2, 128, 8, 0.1));
    // Manual supervisor (no probe thread): the test drives probes so the
    // observed states are deterministic.
    let sup = Supervisor::attach(
        fleet.clone(),
        SupervisorOptions {
            restart_burst: 100,
            quarantine_after: 100,
            flap_window: Duration::ZERO,
            ..SupervisorOptions::default()
        },
    )
    .unwrap();
    let state = ServeState::new(fleet.clone(), Arc::new(MetricsRegistry::new()))
        .with_supervisor(sup.handle());
    for i in 0..100u64 {
        state.ingest(i, (i % 8) as f64).unwrap();
    }
    let server = QueryServer::start("127.0.0.1:0", state, 2).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();

    sup.probe_once();
    let (supervised, shards) = client.health().unwrap();
    assert!(supervised);
    assert_eq!(shards.len(), 2);
    assert!(shards.iter().all(|h| h.state == ShardState::Live));

    // Kill a worker; the next probe detects and restarts it, and the
    // wire health report shows the restart.
    fleet.inject_worker_panic(1).unwrap().unwrap();
    assert!(!fleet.ping(1, Duration::from_secs(5)).unwrap());
    sup.probe_once();
    let (_, shards) = client.health().unwrap();
    assert_eq!(shards[1].restarts, 1, "{shards:?}");
    server.shutdown();
}

#[test]
fn unsupervised_health_is_synthesized_from_pings_over_the_wire() {
    let (server, _state) = start_server(50, 1);
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    let (supervised, shards) = client.health().unwrap();
    assert!(!supervised);
    assert_eq!(shards.len(), 2);
    assert!(shards.iter().all(|h| h.state == ShardState::Live));
    server.shutdown();
}

#[test]
fn degraded_server_keeps_answering_with_honest_coverage() {
    let fleet = FleetHandle::new(ShardedFixedWindow::new(2, 128, 8, 0.1));
    let state = ServeState::new(fleet.clone(), Arc::new(MetricsRegistry::new()))
        .with_policy(SnapshotPolicy::Degraded { min_coverage: 0.25 });
    for i in 0..200u64 {
        state.ingest(i, (i % 16) as f64).unwrap();
    }
    let _ = fleet.snapshot_global();
    let server = QueryServer::start("127.0.0.1:0", state, 2).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();

    let (_, coverage) = client
        .call_scalar(&Request::RangeSum { start: 0, end: 5 })
        .unwrap();
    assert!(coverage.is_complete(), "healthy fleet: {coverage}");

    fleet.inject_worker_panic(0).unwrap().unwrap();
    assert!(!fleet.ping(0, Duration::from_secs(5)).unwrap());
    // Advance the live shard so the cached full snapshot goes stale.
    fleet.push(1, 3.0).unwrap();

    let (value, coverage) = client
        .call_scalar(&Request::RangeSum { start: 0, end: 5 })
        .unwrap();
    assert!(value.is_finite());
    assert_eq!(coverage.shards_included, 1);
    assert_eq!(coverage.shards_total, 2);
    assert!(!coverage.is_complete(), "{coverage}");
    assert!(coverage.fraction() < 1.0);
    server.shutdown();
}

#[test]
fn retry_budget_retries_transport_failures_until_the_deadline() {
    let (server, _state) = start_server(50, 2);
    let addr = server.local_addr();
    let mut client = ServeClient::connect(addr)
        .unwrap()
        .with_retry_budget(RetryBudget {
            deadline: Duration::from_millis(300),
            backoff_start: Duration::from_millis(5),
            seed: 7,
        });
    // Healthy server: no retries spent.
    assert!(client.range_count(0, 5).is_ok());
    assert_eq!(client.retries(), 0);

    server.shutdown();
    // Dead server: the budget retries (reconnects fail) and then gives
    // up with the transport error inside the deadline.
    let start = std::time::Instant::now();
    match client.call(&Request::RangeCount { start: 0, end: 5 }) {
        Err(ClientError::Io(_)) => {}
        other => panic!("dead server should surface Io, got {other:?}"),
    }
    assert!(client.retries() > 0, "budget must have retried");
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "deadline must bound the call"
    );

    // Mutating admin verbs are never retried, budget or not.
    let before = client.retries();
    assert!(client.respawn_shard(0).is_err());
    assert_eq!(client.retries(), before, "respawn_shard must not retry");
}

#[test]
fn trace_ids_round_trip_byte_identically_on_every_verb() {
    let (server, _state) = start_server(200, 2);
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    // Every verb in the protocol, each sent with a distinct trace id from
    // across the u64 range (0 is a legal client-chosen id; only
    // *server-assigned* ids start at 1).
    let requests = [
        Request::RangeSum { start: 0, end: 9 },
        Request::RangeAvg { start: 0, end: 9 },
        Request::Point { idx: 3 },
        Request::RangeCount { start: 0, end: 9 },
        Request::Quantile {
            method: QuantileMethod::Gk,
            phi: 0.5,
        },
        Request::Quantile {
            method: QuantileMethod::Mrl,
            phi: 0.9,
        },
        Request::Selectivity { lo: 0.0, hi: 8.0 },
        Request::ShardStats { shard: 0 },
        Request::RespawnShard { shard: 1 },
        Request::CheckpointAll,
        Request::WalStatus,
        Request::Health,
        Request::Events { from: 0 },
    ];
    for (i, req) in requests.iter().enumerate() {
        let sent = match i % 4 {
            0 => 0u64,
            1 => u64::MAX,
            2 => 1 + (i as u64) * 0x0101_0101_0101_0101,
            _ => u64::MAX - i as u64,
        };
        client.set_trace(Some(sent));
        client.call(req).unwrap_or_else(|e| panic!("{req:?}: {e}"));
        assert_eq!(
            client.last_trace(),
            Some(sent),
            "{req:?} must echo its trace id byte-identically"
        );
    }
    server.shutdown();
}

#[test]
fn error_frames_echo_the_trace_id_too() {
    let (server, _state) = start_server(100, 2);
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    let bad = [
        Request::RangeSum { start: 9, end: 3 },
        Request::Point { idx: usize::MAX },
        Request::ShardStats { shard: 1000 },
        Request::Quantile {
            method: QuantileMethod::Gk,
            phi: 2.0,
        },
    ];
    for (i, req) in bad.iter().enumerate() {
        let sent = 0xBAD0 + i as u64;
        client.set_trace(Some(sent));
        match client.call(req) {
            Err(ClientError::Server(_)) => {}
            other => panic!("{req:?} should earn an error frame, got {other:?}"),
        }
        assert_eq!(
            client.last_trace(),
            Some(sent),
            "{req:?}: the error frame must carry the request's trace id"
        );
    }
    server.shutdown();
}

#[test]
fn untraced_requests_get_a_server_assigned_trace_echoed_back() {
    let (server, _state) = start_server(100, 2);
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    client.set_trace(None);
    assert_eq!(client.last_trace(), None, "no reply yet");
    client.range_sum(0, 5).unwrap();
    let first = client
        .last_trace()
        .expect("server must assign and echo a trace id");
    assert!(first >= 1, "server-assigned ids start at 1, got {first}");
    client.range_sum(0, 5).unwrap();
    let second = client.last_trace().expect("assigned on every reply");
    assert_ne!(first, second, "each untraced request gets a fresh id");
    // An error reply to an untraced request is assigned one as well.
    let _ = client.call(&Request::RangeSum { start: 7, end: 2 });
    let third = client.last_trace().expect("assigned on error replies too");
    assert!(!([first, second].contains(&third)));
    server.shutdown();
}

#[test]
fn slow_query_threshold_zero_logs_every_request_with_its_trace() {
    let fleet = FleetHandle::new(ShardedFixedWindow::new(2, 128, 8, 0.1));
    let state = ServeState::new(fleet, Arc::new(MetricsRegistry::new()));
    for i in 0..100u64 {
        state.ingest(i, (i % 16) as f64).unwrap();
    }
    state.fleet().snapshot_global().unwrap();
    // Threshold zero: every request is "slow", so the recorder captures a
    // full phase timeline per request — the short-traffic-capture mode.
    let server = QueryServer::start_with(
        "127.0.0.1:0",
        state.clone(),
        2,
        ServerOptions {
            slow_query: Duration::ZERO,
            ..ServerOptions::default()
        },
    )
    .unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    client.set_trace(Some(0xCAFE));
    client.range_sum(0, 9).unwrap();
    let (_, events) = client.events_all(0).unwrap();
    let slow: Vec<_> = events
        .iter()
        .filter_map(|e| match &e.kind {
            streamhist_obs::EventKind::SlowQuery {
                verb,
                trace,
                total_us,
                ..
            } => Some((verb.clone(), *trace, *total_us)),
            _ => None,
        })
        .collect();
    let range_sum = slow
        .iter()
        .find(|(verb, _, _)| verb == "range_sum")
        .expect("the traced range_sum must be in the slow-query log");
    assert_eq!(range_sum.1, Some(0xCAFE), "timeline carries the trace id");
    server.shutdown();
}

#[test]
fn per_verb_metrics_are_recorded() {
    let (server, state) = start_server(100, 2);
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    for _ in 0..5 {
        client.range_sum(0, 9).unwrap();
    }
    let _ = client.call(&Request::RangeSum { start: 5, end: 1 });
    let expo = state.registry().text_exposition();
    assert!(
        expo.contains("streamhist_serve_requests_total{verb=\"range_sum\"} 6"),
        "{expo}"
    );
    assert!(
        expo.contains("streamhist_serve_errors_total{code=\"invalid_query\"} 1"),
        "{expo}"
    );
    assert!(state.verb_latency("range_sum").snapshot().count >= 6);
    server.shutdown();
}
