//! Property tests for the selectivity substrate: every bucketization
//! policy yields a structurally valid, domain-clipped estimator whose
//! whole-domain count is exact; V-optimal dominates in SSE; the exact
//! frequency vector agrees with a naive recount.

use proptest::prelude::*;
use streamhist_freq::{evaluate_selectivity, max_diff_ends, FrequencyVector, ValueHistogram};

fn values_strategy() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(-20..80i64, 1..400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn frequency_vector_matches_naive_recount(values in values_strategy()) {
        let (lo, hi) = (0i64, 63i64);
        let f = FrequencyVector::from_values(values.iter().copied(), lo, hi);
        let in_range: Vec<i64> =
            values.iter().copied().filter(|&v| (lo..=hi).contains(&v)).collect();
        prop_assert_eq!(f.total() as usize, in_range.len());
        prop_assert_eq!(
            f.out_of_range() as usize,
            values.len() - in_range.len()
        );
        for probe in [lo, 13, 37, hi] {
            let naive = in_range.iter().filter(|&&v| v == probe).count();
            prop_assert_eq!(f.count_of(probe) as usize, naive);
        }
        for (a, b) in [(0i64, 63i64), (10, 20), (63, 63), (-5, 5)] {
            let naive = in_range.iter().filter(|&&v| (a..=b).contains(&v)).count();
            prop_assert_eq!(f.range_count(a, b) as usize, naive, "range ({}, {})", a, b);
        }
    }

    #[test]
    fn all_policies_are_valid_estimators(values in values_strategy(), b in 1usize..16) {
        let f = FrequencyVector::from_values(values.iter().copied(), 0, 63);
        let hists = [
            ValueHistogram::v_optimal(&f, b),
            ValueHistogram::v_optimal_approx(&f, b, 0.2),
            ValueHistogram::max_diff(&f, b),
            ValueHistogram::equi_width(&f, b),
            ValueHistogram::equi_depth(&f, b),
        ];
        for h in &hists {
            prop_assert!(h.num_buckets() <= b);
            // Whole-domain count is exact (bucket heights are means).
            prop_assert!(
                (h.estimate_range_count(0, 63) - f.total() as f64).abs() < 1e-6
            );
            // Estimates clip cleanly outside the domain.
            prop_assert_eq!(h.estimate_range_count(100, 200), 0.0);
            // Selectivity stays in [0, 1].
            for (a, z) in [(0i64, 63i64), (5, 9), (40, 63)] {
                let s = h.selectivity(a, z);
                prop_assert!((0.0..=1.0).contains(&s));
            }
        }
    }

    #[test]
    fn v_optimal_dominates_in_sse(values in values_strategy(), b in 1usize..12) {
        let f = FrequencyVector::from_values(values.iter().copied(), 0, 63);
        let freqs = f.frequencies();
        let vopt = ValueHistogram::v_optimal(&f, b).histogram().sse(&freqs);
        for h in [
            ValueHistogram::max_diff(&f, b),
            ValueHistogram::equi_width(&f, b),
            ValueHistogram::equi_depth(&f, b),
        ] {
            prop_assert!(vopt <= h.histogram().sse(&freqs) + 1e-6);
        }
    }

    #[test]
    fn max_diff_ends_are_strictly_increasing(
        freqs in prop::collection::vec(0..1000i64, 1..100),
        b in 1usize..20,
    ) {
        let freqs: Vec<f64> = freqs.into_iter().map(|v| v as f64).collect();
        let ends = max_diff_ends(&freqs, b);
        prop_assert!(!ends.is_empty());
        prop_assert_eq!(*ends.last().expect("non-empty"), freqs.len() - 1);
        prop_assert!(ends.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(ends.len() <= b);
    }

    #[test]
    fn full_budget_makes_every_policy_exact(values in values_strategy()) {
        let f = FrequencyVector::from_values(values.iter().copied(), 0, 31);
        let d = f.domain_size();
        let predicates: Vec<(i64, i64)> = (0..16).map(|i| (i, i + 15)).collect();
        for h in [
            ValueHistogram::v_optimal(&f, d),
            ValueHistogram::equi_width(&f, d),
        ] {
            let r = evaluate_selectivity(&f, &h, &predicates);
            prop_assert!(r.mean_abs_error < 1e-6, "err {}", r.mean_abs_error);
        }
    }
}
