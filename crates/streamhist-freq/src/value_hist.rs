//! Histograms over the value domain and the selectivity-estimation
//! protocol.

use crate::freq::FrequencyVector;
use std::sync::Arc;
use streamhist_core::Histogram;

/// A bucketization of a frequency vector, answering value-range count
/// (selectivity) queries from `B` buckets.
///
/// Construction policies follow the `[IP95]` taxonomy; all share the same
/// estimator: a bucket stores its average frequency (continuous-values
/// assumption inside the bucket), and a range count is the sum of
/// `overlap · avg_frequency` over intersecting buckets.
///
/// # Example
///
/// ```
/// use streamhist_freq::{FrequencyVector, ValueHistogram};
///
/// let freq = FrequencyVector::from_values([1, 1, 1, 2, 5, 5], 1, 8);
/// let h = ValueHistogram::v_optimal(&freq, 3);
/// // How many rows match `WHERE v BETWEEN 1 AND 2`? (exactly 4 here)
/// let est = h.estimate_range_count(1, 2);
/// assert!((est - 4.0).abs() < 1.0);
/// assert!((h.selectivity(1, 8) - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct ValueHistogram {
    lo: i64,
    hist: Arc<Histogram>,
    total: u64,
}

impl ValueHistogram {
    /// V-optimal bucketization via the exact `O(d²B)` DP over the
    /// frequency vector (`d` = domain size) — the quality ceiling.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    #[must_use]
    pub fn v_optimal(freq: &FrequencyVector, b: usize) -> Self {
        let hist = Arc::new(streamhist_optimal::optimal_histogram(
            &freq.frequencies(),
            b,
        ));
        Self {
            lo: freq.lo(),
            hist,
            total: freq.total(),
        }
    }

    /// V-optimal bucketization via the paper's one-pass `(1+ε)`
    /// construction — near-ceiling quality at quasi-linear cost.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0` or `eps <= 0`.
    #[must_use]
    pub fn v_optimal_approx(freq: &FrequencyVector, b: usize, eps: f64) -> Self {
        let hist = Arc::new(streamhist_stream::approx_histogram(
            &freq.frequencies(),
            b,
            eps,
        ));
        Self {
            lo: freq.lo(),
            hist,
            total: freq.total(),
        }
    }

    /// MaxDiff bucketization: boundaries at the `B−1` largest adjacent
    /// frequency differences (`[IP95]`'s practical recommendation).
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    #[must_use]
    pub fn max_diff(freq: &FrequencyVector, b: usize) -> Self {
        let f = freq.frequencies();
        let ends = max_diff_ends(&f, b);
        Self {
            lo: freq.lo(),
            hist: Arc::new(Histogram::from_bucket_ends(&f, &ends)),
            total: freq.total(),
        }
    }

    /// Equi-width bucketization of the value domain.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    #[must_use]
    pub fn equi_width(freq: &FrequencyVector, b: usize) -> Self {
        let hist = Arc::new(Histogram::equi_width(&freq.frequencies(), b));
        Self {
            lo: freq.lo(),
            hist,
            total: freq.total(),
        }
    }

    /// Equi-depth bucketization: boundaries at (approximately) equal
    /// cumulative counts, computed exactly from the frequency vector.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    #[must_use]
    pub fn equi_depth(freq: &FrequencyVector, b: usize) -> Self {
        assert!(b > 0, "need at least one bucket");
        let f = freq.frequencies();
        let d = f.len();
        let b = b.min(d);
        let total = freq.total() as f64;
        let mut ends = Vec::with_capacity(b);
        let mut acc = 0.0;
        let mut next_target = total / b as f64;
        for (i, &c) in f.iter().enumerate() {
            acc += c;
            // Stop early: the final boundary is always the domain end,
            // appended below (guarding against a duplicate when all the
            // mass sits at the tail of the domain).
            if i + 1 < d && acc + 1e-9 >= next_target && ends.len() + 1 < b {
                ends.push(i);
                next_target = total * (ends.len() + 1) as f64 / b as f64;
            }
        }
        ends.push(d - 1);
        Self {
            lo: freq.lo(),
            hist: Arc::new(Histogram::from_bucket_ends(&f, &ends)),
            total: freq.total(),
        }
    }

    /// The underlying index-domain histogram (indices are `value − lo`),
    /// as a cheap shared snapshot — the same `Arc<Histogram>` surface the
    /// streaming summaries expose.
    #[must_use]
    pub fn histogram(&self) -> Arc<Histogram> {
        Arc::clone(&self.hist)
    }

    /// Lowest domain value.
    #[must_use]
    pub fn lo(&self) -> i64 {
        self.lo
    }

    /// Number of buckets used.
    #[must_use]
    pub fn num_buckets(&self) -> usize {
        self.hist.num_buckets()
    }

    /// Total number of counted values the histogram summarizes.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Estimated count of values in the inclusive value range `[a, b]`
    /// (clipped to the domain; 0 outside it).
    ///
    /// # Panics
    ///
    /// Panics if `a > b`.
    #[must_use]
    pub fn estimate_range_count(&self, a: i64, b: i64) -> f64 {
        assert!(a <= b, "need a <= b");
        let hi = self.lo + self.hist.domain_len() as i64 - 1;
        let lo = a.max(self.lo);
        let hi = b.min(hi);
        if lo > hi {
            return 0.0;
        }
        let (i, j) = ((lo - self.lo) as usize, (hi - self.lo) as usize);
        self.hist.range_sum(i, j)
    }

    /// Estimated frequency of a single value.
    #[must_use]
    pub fn estimate_frequency(&self, v: i64) -> f64 {
        self.estimate_range_count(v, v)
    }

    /// Estimated selectivity (fraction of all counted values) of `[a, b]`.
    ///
    /// # Panics
    ///
    /// Panics if `a > b`.
    #[must_use]
    pub fn selectivity(&self, a: i64, b: i64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            (self.estimate_range_count(a, b) / self.total as f64).clamp(0.0, 1.0)
        }
    }
}

/// MaxDiff boundary placement: bucket ends at the positions preceding the
/// `b − 1` largest adjacent differences `|f[i+1] − f[i]|`, plus the domain
/// end.
///
/// # Panics
///
/// Panics if `freqs` is empty or `b == 0`.
#[must_use]
pub fn max_diff_ends(freqs: &[f64], b: usize) -> Vec<usize> {
    assert!(!freqs.is_empty(), "frequency vector must be non-empty");
    assert!(b > 0, "need at least one bucket");
    let d = freqs.len();
    let b = b.min(d);
    let mut gaps: Vec<(f64, usize)> = freqs
        .windows(2)
        .enumerate()
        .map(|(i, w)| ((w[1] - w[0]).abs(), i))
        .collect();
    gaps.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite").then(a.1.cmp(&b.1)));
    let mut ends: Vec<usize> = gaps.into_iter().take(b - 1).map(|(_, i)| i).collect();
    ends.push(d - 1);
    ends.sort_unstable();
    ends.dedup();
    ends
}

/// Accuracy statistics of one estimator over a range-predicate workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectivityReport {
    /// Number of predicates evaluated.
    pub queries: usize,
    /// Mean absolute count error.
    pub mean_abs_error: f64,
    /// Mean relative error `|est − exact| / max(exact, 1)`.
    pub mean_rel_error: f64,
    /// Largest absolute count error.
    pub max_abs_error: f64,
}

/// Runs a workload of inclusive value-range predicates against both the
/// exact frequency vector and a histogram estimator.
///
/// # Panics
///
/// Panics if any predicate has `a > b`.
#[must_use]
pub fn evaluate_selectivity(
    freq: &FrequencyVector,
    hist: &ValueHistogram,
    predicates: &[(i64, i64)],
) -> SelectivityReport {
    if predicates.is_empty() {
        return SelectivityReport {
            queries: 0,
            mean_abs_error: 0.0,
            mean_rel_error: 0.0,
            max_abs_error: 0.0,
        };
    }
    let mut sum_abs = 0.0;
    let mut sum_rel = 0.0;
    let mut max_abs = 0.0f64;
    for &(a, b) in predicates {
        let exact = freq.range_count(a, b) as f64;
        let est = hist.estimate_range_count(a, b);
        let abs = (est - exact).abs();
        sum_abs += abs;
        sum_rel += abs / exact.max(1.0);
        max_abs = max_abs.max(abs);
    }
    let n = predicates.len() as f64;
    SelectivityReport {
        queries: predicates.len(),
        mean_abs_error: sum_abs / n,
        mean_rel_error: sum_rel / n,
        max_abs_error: max_abs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed_freq() -> FrequencyVector {
        // Zipf-ish counts over values 0..=63 with a few hot values.
        let mut f = FrequencyVector::new(0, 63);
        for v in 0..64i64 {
            let c = if v % 16 == 0 {
                500
            } else {
                1 + (v % 7) as usize
            };
            for _ in 0..c {
                f.push(v);
            }
        }
        f
    }

    fn all_constructors(freq: &FrequencyVector, b: usize) -> Vec<(&'static str, ValueHistogram)> {
        vec![
            ("v_optimal", ValueHistogram::v_optimal(freq, b)),
            (
                "v_optimal_approx",
                ValueHistogram::v_optimal_approx(freq, b, 0.1),
            ),
            ("max_diff", ValueHistogram::max_diff(freq, b)),
            ("equi_width", ValueHistogram::equi_width(freq, b)),
            ("equi_depth", ValueHistogram::equi_depth(freq, b)),
        ]
    }

    #[test]
    fn all_constructors_respect_budget_and_domain() {
        let freq = skewed_freq();
        for (name, h) in all_constructors(&freq, 8) {
            assert!(h.num_buckets() <= 8, "{name}");
            assert_eq!(h.histogram().domain_len(), 64, "{name}");
            assert_eq!(h.total(), freq.total(), "{name}");
        }
    }

    #[test]
    fn full_domain_count_is_exact_for_mean_preserving_policies() {
        let freq = skewed_freq();
        let exact = freq.total() as f64;
        // Heights are bucket means, so the whole-domain sum is exact.
        for (name, h) in all_constructors(&freq, 8) {
            let est = h.estimate_range_count(0, 63);
            assert!((est - exact).abs() < 1e-6, "{name}: {est} vs {exact}");
            assert!((h.selectivity(0, 63) - 1.0).abs() < 1e-9, "{name}");
        }
    }

    #[test]
    fn v_optimal_has_least_sse_among_policies() {
        let freq = skewed_freq();
        let f = freq.frequencies();
        let b = 8;
        let vopt_sse = ValueHistogram::v_optimal(&freq, b).histogram().sse(&f);
        for (name, h) in all_constructors(&freq, b) {
            assert!(
                vopt_sse <= h.histogram().sse(&f) + 1e-6,
                "{name} beat v-optimal: {} < {vopt_sse}",
                h.histogram().sse(&f)
            );
        }
    }

    #[test]
    fn max_diff_isolates_hot_values() {
        // With enough buckets MaxDiff puts boundaries around the spikes.
        let freq = skewed_freq();
        let h = ValueHistogram::max_diff(&freq, 12);
        // The hot value 16 should be estimated much better than by
        // equi-width at the same budget.
        let ew = ValueHistogram::equi_width(&freq, 12);
        let exact = freq.count_of(16) as f64;
        let md_err = (h.estimate_frequency(16) - exact).abs();
        let ew_err = (ew.estimate_frequency(16) - exact).abs();
        assert!(md_err <= ew_err, "maxdiff {md_err} vs equiwidth {ew_err}");
    }

    #[test]
    fn estimates_clip_to_domain() {
        let freq = skewed_freq();
        let h = ValueHistogram::v_optimal(&freq, 4);
        assert_eq!(h.estimate_range_count(100, 200), 0.0);
        assert_eq!(h.estimate_range_count(-50, -1), 0.0);
        let clipped = h.estimate_range_count(-50, 1000);
        assert!((clipped - freq.total() as f64).abs() < 1e-6);
    }

    #[test]
    fn equi_depth_balances_counts() {
        let freq = skewed_freq();
        let h = ValueHistogram::equi_depth(&freq, 4);
        let f = freq.frequencies();
        let per_bucket = freq.total() as f64 / 4.0;
        for bkt in h.histogram().buckets() {
            let mass: f64 = f[bkt.start..=bkt.end].iter().sum();
            // Heavy point masses limit balance; stay within 2x of target.
            assert!(
                mass <= 2.5 * per_bucket,
                "bucket mass {mass} vs target {per_bucket}"
            );
        }
    }

    #[test]
    fn selectivity_report_zero_for_exact_vector() {
        let freq = skewed_freq();
        // A histogram with one bucket per value is exact.
        let h = ValueHistogram::v_optimal(&freq, 64);
        let predicates: Vec<(i64, i64)> = (0..32).map(|i| (i, i + 31)).collect();
        let r = evaluate_selectivity(&freq, &h, &predicates);
        assert_eq!(r.queries, 32);
        assert!(r.mean_abs_error < 1e-6);
        assert!(r.max_abs_error < 1e-6);
    }

    #[test]
    fn max_diff_ends_are_valid_boundaries() {
        let f = vec![1.0, 1.0, 50.0, 1.0, 1.0, 1.0];
        let ends = max_diff_ends(&f, 3);
        assert_eq!(*ends.last().expect("non-empty"), 5);
        assert!(ends.windows(2).all(|w| w[0] < w[1]));
        // The two biggest gaps surround the spike at index 2.
        assert!(ends.contains(&1) && ends.contains(&2), "{ends:?}");
    }
}
