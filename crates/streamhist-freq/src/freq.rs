//! Streaming frequency vectors over a bounded integer value domain.

use streamhist_core::checkpoint::{tag, Checkpoint, FrameReader, FrameWriter};
use streamhist_core::{MergeableSummary, StreamSummary, StreamhistError};

/// Counts of each value in `[lo, hi]`, maintained from a stream in `O(1)`
/// per arrival.
///
/// The bounded-domain assumption matches the paper's §3 ("each value x_i
/// is an integer drawn from some bounded range") and the classical
/// selectivity-estimation setting.
#[derive(Debug, Clone)]
pub struct FrequencyVector {
    lo: i64,
    counts: Vec<u64>,
    total: u64,
    out_of_range: u64,
}

impl FrequencyVector {
    /// Creates an empty vector over the inclusive value domain `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn new(lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "need lo <= hi");
        let width = usize::try_from(hi - lo).expect("domain fits in memory") + 1;
        Self {
            lo,
            counts: vec![0; width],
            total: 0,
            out_of_range: 0,
        }
    }

    /// Builds the vector from an iterator of values.
    #[must_use]
    pub fn from_values<I: IntoIterator<Item = i64>>(values: I, lo: i64, hi: i64) -> Self {
        let mut f = Self::new(lo, hi);
        for v in values {
            f.push(v);
        }
        f
    }

    /// Lowest domain value.
    #[must_use]
    pub fn lo(&self) -> i64 {
        self.lo
    }

    /// Highest domain value.
    #[must_use]
    pub fn hi(&self) -> i64 {
        self.lo + self.counts.len() as i64 - 1
    }

    /// Number of distinct values the domain spans.
    #[must_use]
    pub fn domain_size(&self) -> usize {
        self.counts.len()
    }

    /// Total number of in-range values counted.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of observations rejected for being outside `[lo, hi]`.
    #[must_use]
    pub fn out_of_range(&self) -> u64 {
        self.out_of_range
    }

    /// Counts one observation. Out-of-range values are tallied separately
    /// and otherwise ignored (streams are noisy; panicking per point is
    /// not an option for a monitor).
    pub fn push(&mut self, v: i64) {
        if v < self.lo || v > self.hi() {
            self.out_of_range += 1;
            return;
        }
        let idx = (v - self.lo) as usize;
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Restores the vector to all-zero counts, keeping the domain.
    pub fn reset(&mut self) {
        self.counts.fill(0);
        self.total = 0;
        self.out_of_range = 0;
    }

    /// The raw counts, indexed by `value - lo`.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The counts as `f64` (the sequence the histogram constructions run
    /// over).
    #[must_use]
    pub fn frequencies(&self) -> Vec<f64> {
        self.counts.iter().map(|&c| c as f64).collect()
    }

    /// The exact count of a single value.
    #[must_use]
    pub fn count_of(&self, v: i64) -> u64 {
        if v < self.lo || v > self.hi() {
            0
        } else {
            self.counts[(v - self.lo) as usize]
        }
    }

    /// The exact number of counted values in the inclusive value range
    /// `[a, b]` (clipped to the domain).
    ///
    /// # Panics
    ///
    /// Panics if `a > b`.
    #[must_use]
    pub fn range_count(&self, a: i64, b: i64) -> u64 {
        assert!(a <= b, "need a <= b");
        let lo = a.max(self.lo);
        let hi = b.min(self.hi());
        if lo > hi {
            return 0;
        }
        let (i, j) = ((lo - self.lo) as usize, (hi - self.lo) as usize);
        self.counts[i..=j].iter().sum()
    }
}

/// Vector addition — the one **exact** merge in the workspace: counts,
/// totals and out-of-range tallies add element-wise, so the merged vector
/// equals the vector of the concatenated streams bit for bit (DESIGN.md
/// §7). Both operands must span the identical value domain `[lo, hi]`.
impl MergeableSummary for FrequencyVector {
    fn merge_from(&mut self, other: &Self) -> Result<(), StreamhistError> {
        if self.lo != other.lo {
            return Err(StreamhistError::InvalidParameter {
                param: "lo",
                message: "merge requires identical value domains",
            });
        }
        if self.counts.len() != other.counts.len() {
            return Err(StreamhistError::InvalidParameter {
                param: "hi",
                message: "merge requires identical value domains",
            });
        }
        for (c, &o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.total += other.total;
        self.out_of_range += other.out_of_range;
        Ok(())
    }
}

impl Checkpoint for FrequencyVector {
    fn encode_checkpoint(&self) -> Vec<u8> {
        let mut w = FrameWriter::new(tag::FREQUENCY_VECTOR);
        // Zigzag so negative domain bounds stay compact varints.
        w.put_varint(((self.lo << 1) ^ (self.lo >> 63)) as u64);
        w.put_varint(self.total);
        w.put_varint(self.out_of_range);
        w.put_usize(self.counts.len());
        for &c in &self.counts {
            w.put_varint(c);
        }
        w.finish()
    }

    fn restore(bytes: &[u8]) -> Result<Self, StreamhistError> {
        let corrupt = |reason| StreamhistError::CorruptCheckpoint { reason };
        let mut r = FrameReader::open(bytes, tag::FREQUENCY_VECTOR)?;
        let z = r.get_varint()?;
        #[allow(clippy::cast_possible_wrap)]
        let lo = ((z >> 1) as i64) ^ -((z & 1) as i64);
        let total = r.get_varint()?;
        let out_of_range = r.get_varint()?;
        let width = r.get_count(1)?;
        if width == 0 {
            return Err(corrupt("empty value domain"));
        }
        // The inclusive upper bound lo + width - 1 must stay in i64.
        if i64::try_from(width - 1)
            .ok()
            .and_then(|w| lo.checked_add(w))
            .is_none()
        {
            return Err(corrupt("value domain overflows i64"));
        }
        let mut counts = Vec::with_capacity(width);
        let mut sum: u64 = 0;
        for _ in 0..width {
            let c = r.get_varint()?;
            sum = sum
                .checked_add(c)
                .ok_or_else(|| corrupt("counts overflow u64"))?;
            counts.push(c);
        }
        if sum != total {
            return Err(corrupt("counts do not sum to total"));
        }
        r.finish()?;
        Ok(Self {
            lo,
            counts,
            total,
            out_of_range,
        })
    }
}

impl StreamSummary for FrequencyVector {
    /// Consumes one `f64` observation by rounding to the nearest integer
    /// value (frequency vectors live on an integer domain). Non-finite
    /// values are rejected; out-of-range integers follow the type's own
    /// policy (tallied in [`FrequencyVector::out_of_range`], not an error).
    fn try_push(&mut self, v: f64) -> Result<(), StreamhistError> {
        if !v.is_finite() {
            return Err(StreamhistError::NonFiniteValue { value: v });
        }
        #[allow(clippy::cast_possible_truncation)]
        FrequencyVector::push(self, v.round() as i64);
        Ok(())
    }

    /// Total number of **in-range** values counted.
    fn len(&self) -> usize {
        usize::try_from(self.total).unwrap_or(usize::MAX)
    }

    fn reset(&mut self) {
        FrequencyVector::reset(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_totals() {
        let f = FrequencyVector::from_values([1, 2, 2, 3, 3, 3, 10], 1, 5);
        assert_eq!(f.total(), 6);
        assert_eq!(f.out_of_range(), 1); // the 10
        assert_eq!(f.count_of(3), 3);
        assert_eq!(f.count_of(4), 0);
        assert_eq!(f.count_of(10), 0);
    }

    #[test]
    fn range_count_is_exact_and_clipped() {
        let f = FrequencyVector::from_values([1, 2, 2, 3, 3, 3, 5], 1, 5);
        assert_eq!(f.range_count(2, 3), 5);
        assert_eq!(f.range_count(-10, 100), 7);
        assert_eq!(f.range_count(4, 4), 0);
        assert_eq!(f.range_count(6, 9), 0);
    }

    #[test]
    fn negative_domains_work() {
        let f = FrequencyVector::from_values([-3, -3, -1, 0, 2], -3, 2);
        assert_eq!(f.lo(), -3);
        assert_eq!(f.hi(), 2);
        assert_eq!(f.count_of(-3), 2);
        assert_eq!(f.range_count(-3, -1), 3);
    }

    #[test]
    fn frequencies_mirror_counts() {
        let f = FrequencyVector::from_values([0, 0, 1], 0, 2);
        assert_eq!(f.frequencies(), vec![2.0, 1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn inverted_domain_rejected() {
        let _ = FrequencyVector::new(5, 4);
    }

    #[test]
    fn push_is_the_single_ingest_entry_point() {
        let mut f = FrequencyVector::new(0, 3);
        f.push(2);
        assert_eq!(f.count_of(2), 1);
    }

    #[test]
    fn merge_is_exact_and_commutative() {
        let a = FrequencyVector::from_values([1, 2, 2, 9], 1, 5);
        let b = FrequencyVector::from_values([3, 3, 5, -4], 1, 5);
        let mut ab = a.clone();
        ab.merge_from(&b).expect("same domain");
        let mut ba = b.clone();
        ba.merge_from(&a).expect("same domain");
        assert_eq!(ab.counts(), ba.counts());
        assert_eq!(ab.total(), 6);
        assert_eq!(ab.out_of_range(), 2);
        // Equals the vector of the concatenated streams exactly.
        let whole = FrequencyVector::from_values([1, 2, 2, 9, 3, 3, 5, -4], 1, 5);
        assert_eq!(ab.counts(), whole.counts());
        assert_eq!(ab.out_of_range(), whole.out_of_range());
    }

    #[test]
    fn merge_rejects_mismatched_domains() {
        let mut a = FrequencyVector::new(0, 5);
        let shifted = FrequencyVector::new(1, 6);
        let err = a.merge_from(&shifted).expect_err("lo differs");
        assert!(matches!(
            err,
            StreamhistError::InvalidParameter { param: "lo", .. }
        ));
        let wider = FrequencyVector::new(0, 9);
        let err = a.merge_from(&wider).expect_err("width differs");
        assert!(matches!(
            err,
            StreamhistError::InvalidParameter { param: "hi", .. }
        ));
        assert_eq!(a.total(), 0);
    }

    #[test]
    fn stream_summary_rounds_rejects_non_finite_and_resets() {
        let mut f = FrequencyVector::new(0, 9);
        let out = f.push_batch(&[1.2, 2.8, f64::NAN, 100.0, f64::INFINITY]);
        // 100.0 is finite, so it is accepted by the trait and tallied
        // out-of-range by the vector's own policy.
        assert_eq!((out.accepted, out.rejected), (3, 2));
        assert_eq!(f.count_of(1), 1);
        assert_eq!(f.count_of(3), 1);
        assert_eq!(f.out_of_range(), 1);
        assert_eq!(StreamSummary::len(&f), 2);
        f.reset();
        assert!(f.is_empty());
        assert_eq!(f.out_of_range(), 0);
    }
}
