//! Streaming frequency vectors over a bounded integer value domain.

use streamhist_core::{StreamSummary, StreamhistError};

/// Counts of each value in `[lo, hi]`, maintained from a stream in `O(1)`
/// per arrival.
///
/// The bounded-domain assumption matches the paper's §3 ("each value x_i
/// is an integer drawn from some bounded range") and the classical
/// selectivity-estimation setting.
#[derive(Debug, Clone)]
pub struct FrequencyVector {
    lo: i64,
    counts: Vec<u64>,
    total: u64,
    out_of_range: u64,
}

impl FrequencyVector {
    /// Creates an empty vector over the inclusive value domain `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn new(lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "need lo <= hi");
        let width = usize::try_from(hi - lo).expect("domain fits in memory") + 1;
        Self {
            lo,
            counts: vec![0; width],
            total: 0,
            out_of_range: 0,
        }
    }

    /// Builds the vector from an iterator of values.
    #[must_use]
    pub fn from_values<I: IntoIterator<Item = i64>>(values: I, lo: i64, hi: i64) -> Self {
        let mut f = Self::new(lo, hi);
        for v in values {
            f.push(v);
        }
        f
    }

    /// Lowest domain value.
    #[must_use]
    pub fn lo(&self) -> i64 {
        self.lo
    }

    /// Highest domain value.
    #[must_use]
    pub fn hi(&self) -> i64 {
        self.lo + self.counts.len() as i64 - 1
    }

    /// Number of distinct values the domain spans.
    #[must_use]
    pub fn domain_size(&self) -> usize {
        self.counts.len()
    }

    /// Total number of in-range values counted.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of observations rejected for being outside `[lo, hi]`.
    #[must_use]
    pub fn out_of_range(&self) -> u64 {
        self.out_of_range
    }

    /// Counts one observation. Out-of-range values are tallied separately
    /// and otherwise ignored (streams are noisy; panicking per point is
    /// not an option for a monitor).
    pub fn push(&mut self, v: i64) {
        if v < self.lo || v > self.hi() {
            self.out_of_range += 1;
            return;
        }
        let idx = (v - self.lo) as usize;
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Renamed alias kept for source compatibility.
    #[deprecated(note = "renamed to `push`")]
    pub fn add(&mut self, v: i64) {
        self.push(v);
    }

    /// Restores the vector to all-zero counts, keeping the domain.
    pub fn reset(&mut self) {
        self.counts.fill(0);
        self.total = 0;
        self.out_of_range = 0;
    }

    /// The raw counts, indexed by `value - lo`.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The counts as `f64` (the sequence the histogram constructions run
    /// over).
    #[must_use]
    pub fn frequencies(&self) -> Vec<f64> {
        self.counts.iter().map(|&c| c as f64).collect()
    }

    /// The exact count of a single value.
    #[must_use]
    pub fn count_of(&self, v: i64) -> u64 {
        if v < self.lo || v > self.hi() {
            0
        } else {
            self.counts[(v - self.lo) as usize]
        }
    }

    /// The exact number of counted values in the inclusive value range
    /// `[a, b]` (clipped to the domain).
    ///
    /// # Panics
    ///
    /// Panics if `a > b`.
    #[must_use]
    pub fn range_count(&self, a: i64, b: i64) -> u64 {
        assert!(a <= b, "need a <= b");
        let lo = a.max(self.lo);
        let hi = b.min(self.hi());
        if lo > hi {
            return 0;
        }
        let (i, j) = ((lo - self.lo) as usize, (hi - self.lo) as usize);
        self.counts[i..=j].iter().sum()
    }
}

impl StreamSummary for FrequencyVector {
    /// Consumes one `f64` observation by rounding to the nearest integer
    /// value (frequency vectors live on an integer domain). Non-finite
    /// values are rejected; out-of-range integers follow the type's own
    /// policy (tallied in [`FrequencyVector::out_of_range`], not an error).
    fn try_push(&mut self, v: f64) -> Result<(), StreamhistError> {
        if !v.is_finite() {
            return Err(StreamhistError::NonFiniteValue { value: v });
        }
        #[allow(clippy::cast_possible_truncation)]
        FrequencyVector::push(self, v.round() as i64);
        Ok(())
    }

    /// Total number of **in-range** values counted.
    fn len(&self) -> usize {
        usize::try_from(self.total).unwrap_or(usize::MAX)
    }

    fn reset(&mut self) {
        FrequencyVector::reset(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_totals() {
        let f = FrequencyVector::from_values([1, 2, 2, 3, 3, 3, 10], 1, 5);
        assert_eq!(f.total(), 6);
        assert_eq!(f.out_of_range(), 1); // the 10
        assert_eq!(f.count_of(3), 3);
        assert_eq!(f.count_of(4), 0);
        assert_eq!(f.count_of(10), 0);
    }

    #[test]
    fn range_count_is_exact_and_clipped() {
        let f = FrequencyVector::from_values([1, 2, 2, 3, 3, 3, 5], 1, 5);
        assert_eq!(f.range_count(2, 3), 5);
        assert_eq!(f.range_count(-10, 100), 7);
        assert_eq!(f.range_count(4, 4), 0);
        assert_eq!(f.range_count(6, 9), 0);
    }

    #[test]
    fn negative_domains_work() {
        let f = FrequencyVector::from_values([-3, -3, -1, 0, 2], -3, 2);
        assert_eq!(f.lo(), -3);
        assert_eq!(f.hi(), 2);
        assert_eq!(f.count_of(-3), 2);
        assert_eq!(f.range_count(-3, -1), 3);
    }

    #[test]
    fn frequencies_mirror_counts() {
        let f = FrequencyVector::from_values([0, 0, 1], 0, 2);
        assert_eq!(f.frequencies(), vec![2.0, 1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn inverted_domain_rejected() {
        let _ = FrequencyVector::new(5, 4);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_add_alias_still_counts() {
        let mut f = FrequencyVector::new(0, 3);
        f.add(2);
        assert_eq!(f.count_of(2), 1);
    }

    #[test]
    fn stream_summary_rounds_rejects_non_finite_and_resets() {
        let mut f = FrequencyVector::new(0, 9);
        let out = f.push_batch(&[1.2, 2.8, f64::NAN, 100.0, f64::INFINITY]);
        // 100.0 is finite, so it is accepted by the trait and tallied
        // out-of-range by the vector's own policy.
        assert_eq!((out.accepted, out.rejected), (3, 2));
        assert_eq!(f.count_of(1), 1);
        assert_eq!(f.count_of(3), 1);
        assert_eq!(f.out_of_range(), 1);
        assert_eq!(StreamSummary::len(&f), 2);
        f.reset();
        assert!(f.is_empty());
        assert_eq!(f.out_of_range(), 0);
    }
}
