//! # streamhist-freq
//!
//! Value-domain frequency histograms for **selectivity estimation** — the
//! query-optimization setting the reproduced paper builds on: its V-optimal
//! objective comes from Ioannidis & Poosala, *"Balancing Histogram
//! Optimality and Practicality for Query Result Size Estimation"* (SIGMOD
//! 1995, the paper's `[IP95]`), where histograms approximate the
//! *frequency distribution over attribute values* so the optimizer can
//! estimate `SELECT ... WHERE a <= x <= b` result sizes.
//!
//! The index-domain machinery of the rest of the workspace transfers
//! directly: a frequency vector over a bounded value domain is just a
//! sequence, and a histogram over it answers range-count (selectivity)
//! queries as range sums.
//!
//! * [`FrequencyVector`] — streaming counts over a bounded integer domain.
//! * [`ValueHistogram`] — a bucketization of the frequency vector with
//!   value-space query methods, constructible by every classical policy:
//!   [`ValueHistogram::v_optimal`] (exact DP), `v_optimal_approx`
//!   (the paper's one-pass construction), `max_diff` (boundaries at the
//!   largest adjacent frequency gaps — `[IP95]`'s practical favourite),
//!   `equi_width`, and `equi_depth` (equal cumulative counts).
//! * [`evaluate_selectivity`] — the `[IP95]`-style accuracy protocol:
//!   random range predicates, average absolute/relative count error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod freq;
mod value_hist;

pub use freq::FrequencyVector;
pub use streamhist_core::{BatchOutcome, MergeableSummary, StreamSummary};
pub use value_hist::{evaluate_selectivity, max_diff_ends, SelectivityReport, ValueHistogram};
