//! Satellite: `LatencyRecorder` quantile sanity against a sorted-vec
//! oracle on deterministic workloads, plus losslessness across window
//! wraps and `reset()`.

use streamhist_obs::LatencyRecorder;

const WINDOW: usize = 1_000;
const EPS: f64 = 0.01;

/// The samples the recorder's merged epochs currently cover: the last
/// `in_current` samples (current epoch) plus, once at least one rotation
/// has happened, the `WINDOW` samples before those (previous epoch).
fn covered_slice(all: &[u64]) -> &[u64] {
    let k = all.len();
    if k == 0 {
        return all;
    }
    let in_current = ((k - 1) % WINDOW) + 1;
    let covered = if k > WINDOW { in_current + WINDOW } else { k };
    &all[k - covered..]
}

/// Checks that for every probe quantile, the recorder's answer lands
/// within the combined GK rank tolerance of the oracle rank over the
/// covered window.
fn assert_quantiles_match_oracle(rec: &LatencyRecorder, all: &[u64], workload: &str) {
    let covered = covered_slice(all);
    let mut sorted: Vec<u64> = covered.to_vec();
    sorted.sort_unstable();
    let total = sorted.len();
    for phi in [0.0, 0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
        let got = rec.quantile_ns(phi);
        assert!(got.is_finite(), "{workload}: phi={phi} returned {got}");
        // Rank of the returned value inside the oracle window.
        let lo = sorted.partition_point(|&v| (v as f64) < got);
        let hi = sorted.partition_point(|&v| (v as f64) <= got);
        let target = (phi * total as f64).ceil().max(1.0);
        // Each epoch contributes up to eps * n_epoch rank error and the
        // bisection adds at most one more rank of slack.
        let tol = 2.0 * EPS * total as f64 + 2.0;
        let dev = if (lo as f64) > target {
            lo as f64 - target
        } else if (hi as f64) < target {
            target - hi as f64
        } else {
            0.0
        };
        assert!(
            dev <= tol,
            "{workload}: phi={phi} value={got} rank-band=[{lo},{hi}] target={target} tol={tol}"
        );
    }
}

fn run_workload(name: &str, samples: impl Iterator<Item = u64>) {
    let rec = LatencyRecorder::with_config(EPS, WINDOW);
    let mut all = Vec::new();
    for (i, s) in samples.enumerate() {
        rec.record_ns(s);
        all.push(s);
        // Check at several points, including mid-epoch and just after wraps.
        if [500, WINDOW, WINDOW + 1, 2 * WINDOW + 357, 5 * WINDOW].contains(&(i + 1)) {
            assert_quantiles_match_oracle(&rec, &all, name);
        }
    }
    assert_quantiles_match_oracle(&rec, &all, name);
    assert_eq!(rec.count(), all.len() as u64, "{name}: lifetime count");
    assert_eq!(
        rec.sum_ns(),
        all.iter().sum::<u64>(),
        "{name}: lifetime sum"
    );
    assert_eq!(
        rec.max_ns(),
        all.iter().copied().max().unwrap_or(0),
        "{name}: lifetime max"
    );
}

#[test]
fn increasing_ramp_matches_oracle() {
    run_workload("ramp", (0..6 * WINDOW as u64).map(|i| i * 100));
}

#[test]
fn lcg_pseudorandom_matches_oracle() {
    // Deterministic LCG (Numerical Recipes constants), values in ns scale.
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    run_workload(
        "lcg",
        (0..6 * WINDOW).map(move |_| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            state >> 40 // keep magnitudes modest so the sum stays exact
        }),
    );
}

#[test]
fn constant_with_spikes_matches_oracle() {
    run_workload(
        "spiky",
        (0..6 * WINDOW as u64).map(|i| if i % 97 == 0 { 5_000_000 } else { 1_000 }),
    );
}

#[test]
fn recording_is_panic_free_and_lossless_across_wraps_and_reset() {
    let rec = LatencyRecorder::with_config(0.02, 128);
    // Phase 1: push through many wraps.
    for i in 0..10_000u64 {
        rec.record_ns(i % 4_096);
    }
    assert_eq!(rec.count(), 10_000);
    let snap = rec.snapshot();
    assert_eq!(snap.count, 10_000);
    assert!(snap.quantiles.iter().all(|(_, v)| v.is_finite()));

    // Phase 2: reset mid-stream, then keep recording across more wraps.
    rec.reset();
    assert_eq!(rec.count(), 0);
    assert!(rec.quantile_ns(0.5).is_nan());
    for i in 0..1_000u64 {
        rec.record_ns(i);
    }
    assert_eq!(rec.count(), 1_000, "post-reset samples all accounted for");
    assert_eq!(rec.sum_ns(), 1_000 * 999 / 2);
    let p50 = rec.quantile_ns(0.5);
    // Covered window after reset is the last 128..256 samples (values
    // 744..=999); the median must come from that population.
    assert!((700.0..=1_000.0).contains(&p50), "p50 = {p50}");
}

#[test]
fn concurrent_recording_is_lossless() {
    use std::sync::Arc;
    let rec = Arc::new(LatencyRecorder::with_config(0.02, 256));
    let threads = 4;
    let per_thread = 5_000u64;
    let mut joins = Vec::new();
    for t in 0..threads {
        let rec = Arc::clone(&rec);
        joins.push(std::thread::spawn(move || {
            for i in 0..per_thread {
                rec.record_ns(t * per_thread + i);
            }
        }));
    }
    for j in joins {
        j.join().expect("recorder thread panicked");
    }
    assert_eq!(rec.count(), threads * per_thread);
    assert!(rec.quantile_ns(0.5).is_finite());
}
