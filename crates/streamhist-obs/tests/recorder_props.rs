//! Property tests for the flight recorder under racing writers.
//!
//! The recorder's contract: every `record()` gets a unique, strictly
//! increasing sequence number; at most `capacity` events are retained;
//! `events_from` drains in sequence order. The properties below exercise
//! that with real threads racing on small rings — the interesting regime
//! is total events ≫ capacity, where slot reuse forces the
//! seq-compare-on-overwrite path.

use std::sync::Arc;

use proptest::prelude::*;
use streamhist_obs::{EventKind, FlightRecorder};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn racing_writers_preserve_the_ring_invariants(
        capacity in 1usize..64,
        writers in 1usize..6,
        per_writer in 1usize..200,
    ) {
        let rec = Arc::new(FlightRecorder::with_capacity(capacity));
        let handles: Vec<_> = (0..writers)
            .map(|w| {
                let rec = Arc::clone(&rec);
                std::thread::spawn(move || {
                    for i in 0..per_writer {
                        rec.record(EventKind::ShardDied { shard: w * 10_000 + i });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("writer panicked");
        }

        let total = (writers * per_writer) as u64;
        prop_assert_eq!(rec.recorded(), total, "every record claimed a seq");

        let events = rec.all_events();
        // Capacity never exceeded.
        prop_assert!(events.len() <= capacity, "{} > {}", events.len(), capacity);
        // With writers done, every slot holds an event once total >= capacity.
        if total >= capacity as u64 {
            prop_assert_eq!(events.len(), capacity);
        } else {
            prop_assert_eq!(events.len() as u64, total);
        }

        // Drain is seq-ordered with no lost or duplicated seqs.
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        for pair in seqs.windows(2) {
            prop_assert!(pair[0] < pair[1], "out of order or duplicated: {:?}", seqs);
        }
        // All seqs are valid claims, and none is older than two laps —
        // a racing writer can at worst leave the previous lap's event in
        // its slot, never anything older.
        for &s in &seqs {
            prop_assert!(s < total);
            prop_assert!(s + 2 * capacity as u64 >= total, "stale seq {} of {}", s, total);
        }
    }

    #[test]
    fn paging_never_skips_or_repeats(
        capacity in 1usize..32,
        events in 0usize..100,
        page in 1usize..8,
    ) {
        let rec = FlightRecorder::with_capacity(capacity);
        for shard in 0..events {
            rec.record(EventKind::ShardRecovered { shard });
        }
        // Page through with `from = last seq + 1` and reassemble.
        let mut seen = Vec::new();
        let mut from = 0u64;
        loop {
            let batch = rec.events_from(from, page);
            if batch.is_empty() {
                break;
            }
            from = batch.last().expect("non-empty").seq + 1;
            seen.extend(batch.into_iter().map(|e| e.seq));
        }
        let direct: Vec<u64> = rec.all_events().into_iter().map(|e| e.seq).collect();
        prop_assert_eq!(seen, direct);
    }
}
