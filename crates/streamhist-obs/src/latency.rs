//! Latency distributions maintained by the workspace's own GK summaries.
//!
//! A [`LatencyRecorder`] answers "what were p50/p95/p99 recently?" in
//! bounded memory by keeping **two rotating
//! [`GkSummary`](streamhist_quantile::GkSummary) epochs**: samples go
//! into the *current* epoch, and when it has absorbed `window` samples it
//! is demoted to *previous* and a fresh epoch starts. Quantile queries
//! merge both epochs (see [`LatencyRecorder::quantile_ns`]), so answers
//! always reflect between `window` and `2·window` of the most recent
//! samples — a coarse sliding window in the spirit of the paper's
//! fixed-window maintenance, with GK's `O((1/ε)·log(εn))` space bound per
//! epoch.
//!
//! Alongside the rotating sketches the recorder keeps **lifetime**
//! aggregates (`count`, `sum`, `max`) that are never discarded by epoch
//! rotation or wraps, so Prometheus-style `_count`/`_sum` series stay
//! monotone and no recorded sample is lost from the totals.
//!
//! The recorder never calls back into histogram construction — its GK
//! backend is a plain value sketch — so it is safe to use from inside the
//! kernel's own instrumented paths without recursion.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use streamhist_quantile::{GkSummary, QuantileSummary};

/// Default rank-error tolerance for the per-epoch GK sketches.
pub const DEFAULT_EPS: f64 = 0.01;
/// Default samples per epoch before rotation.
pub const DEFAULT_WINDOW: usize = 8_192;

/// The quantiles published in snapshots and the text exposition.
pub const SNAPSHOT_QUANTILES: [f64; 4] = [0.5, 0.9, 0.95, 0.99];

#[derive(Debug)]
struct Inner {
    current: GkSummary,
    previous: Option<GkSummary>,
    in_current: usize,
    count: u64,
    sum_ns: u64,
    max_ns: u64,
}

/// A windowed latency summary backed by rotating GK epochs.
///
/// See the [module docs](self) for the rotation and losslessness
/// semantics. All methods take `&self`; a short internal mutex guards the
/// sketches (one ordered insert per sample — this is the only non-atomic
/// metric cell in the registry).
#[derive(Debug)]
pub struct LatencyRecorder {
    eps: f64,
    window: usize,
    inner: Mutex<Inner>,
}

impl Default for LatencyRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyRecorder {
    /// Creates a recorder with [`DEFAULT_EPS`] and [`DEFAULT_WINDOW`].
    #[must_use]
    pub fn new() -> Self {
        Self::with_config(DEFAULT_EPS, DEFAULT_WINDOW)
    }

    /// Creates a recorder with an explicit GK tolerance and epoch size.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < eps < 1` and `window > 0`.
    #[must_use]
    pub fn with_config(eps: f64, window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        Self {
            eps,
            window,
            inner: Mutex::new(Inner {
                current: GkSummary::new(eps),
                previous: None,
                in_current: 0,
                count: 0,
                sum_ns: 0,
                max_ns: 0,
            }),
        }
    }

    /// The per-epoch GK tolerance.
    #[must_use]
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Samples per epoch before rotation.
    #[must_use]
    pub fn window(&self) -> usize {
        self.window
    }

    /// Records one duration in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        let mut inner = self.inner.lock().expect("latency mutex poisoned");
        if inner.in_current >= self.window {
            let fresh = GkSummary::new(self.eps);
            let retired = std::mem::replace(&mut inner.current, fresh);
            inner.previous = Some(retired);
            inner.in_current = 0;
        }
        // `ns as f64` is always finite, so this cannot fail or panic.
        inner.current.push(ns as f64);
        inner.in_current += 1;
        inner.count += 1;
        inner.sum_ns = inner.sum_ns.saturating_add(ns);
        inner.max_ns = inner.max_ns.max(ns);
    }

    /// Records one [`Duration`].
    pub fn record(&self, d: Duration) {
        self.record_ns(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Starts a span that records its elapsed time into this recorder
    /// when dropped.
    #[must_use]
    pub fn span(&self) -> LatencySpan<'_> {
        LatencySpan {
            recorder: self,
            start: Instant::now(),
        }
    }

    /// Lifetime sample count (survives epoch rotation).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.inner.lock().expect("latency mutex poisoned").count
    }

    /// Lifetime sum of recorded nanoseconds (saturating).
    #[must_use]
    pub fn sum_ns(&self) -> u64 {
        self.inner.lock().expect("latency mutex poisoned").sum_ns
    }

    /// Largest sample ever recorded, in nanoseconds.
    #[must_use]
    pub fn max_ns(&self) -> u64 {
        self.inner.lock().expect("latency mutex poisoned").max_ns
    }

    /// The `phi`-quantile of the merged previous+current epochs, in
    /// nanoseconds. Returns NaN when nothing has been recorded since the
    /// last reset.
    ///
    /// The merge bisects the value domain for the smallest value whose
    /// combined [`rank`](QuantileSummary::rank) across both epochs reaches
    /// `⌈phi · total⌉`; each epoch's rank is within `ε·n_epoch` of truth,
    /// so the combined rank error is at most `ε · total`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= phi <= 1`.
    #[must_use]
    pub fn quantile_ns(&self, phi: f64) -> f64 {
        assert!((0.0..=1.0).contains(&phi), "phi must be in [0, 1]");
        let inner = self.inner.lock().expect("latency mutex poisoned");
        Self::quantile_locked(&inner, phi)
    }

    fn quantile_locked(inner: &Inner, phi: f64) -> f64 {
        let cur_n = inner.current.count();
        let prev_n = inner.previous.as_ref().map_or(0, QuantileSummary::count);
        let total = cur_n + prev_n;
        if total == 0 {
            return f64::NAN;
        }
        let (prev, cur) = (&inner.previous, &inner.current);
        if prev_n == 0 {
            return cur.quantile(phi);
        }
        if cur_n == 0 {
            return prev.as_ref().expect("prev_n > 0").quantile(phi);
        }
        let prev = prev.as_ref().expect("prev_n > 0");
        let target = (phi * total as f64).ceil().max(1.0) as usize;
        let rank_at = |v: f64| prev.rank(v) + cur.rank(v);
        // Bisect the value domain. `max_ns` upper-bounds every sample in
        // either epoch, so `rank_at(hi) == total >= target` always holds.
        let mut lo = 0.0_f64;
        let mut hi = inner.max_ns as f64;
        for _ in 0..64 {
            let mid = lo + (hi - lo) / 2.0;
            if mid <= lo || mid >= hi {
                break;
            }
            if rank_at(mid) >= target {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    }

    /// A consistent point-in-time snapshot: lifetime aggregates plus the
    /// merged [`SNAPSHOT_QUANTILES`], all read under one lock so they
    /// describe the same instant.
    #[must_use]
    pub fn snapshot(&self) -> LatencySnapshot {
        let inner = self.inner.lock().expect("latency mutex poisoned");
        let quantiles = SNAPSHOT_QUANTILES
            .iter()
            .map(|&phi| (phi, Self::quantile_locked(&inner, phi)))
            .collect();
        LatencySnapshot {
            count: inner.count,
            sum_ns: inner.sum_ns,
            max_ns: inner.max_ns,
            quantiles,
            stored: inner.current.stored()
                + inner.previous.as_ref().map_or(0, QuantileSummary::stored),
        }
    }

    /// Discards both epochs and the lifetime aggregates, returning the
    /// recorder to its freshly-constructed state. Recording remains valid
    /// (and panic-free) immediately afterwards.
    pub fn reset(&self) {
        let mut inner = self.inner.lock().expect("latency mutex poisoned");
        inner.current.reset();
        inner.previous = None;
        inner.in_current = 0;
        inner.count = 0;
        inner.sum_ns = 0;
        inner.max_ns = 0;
    }
}

/// Times a scope; records into its [`LatencyRecorder`] on drop.
#[derive(Debug)]
pub struct LatencySpan<'a> {
    recorder: &'a LatencyRecorder,
    start: Instant,
}

impl LatencySpan<'_> {
    /// Elapsed time so far (the span keeps running).
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Drop for LatencySpan<'_> {
    fn drop(&mut self) {
        self.recorder.record(self.start.elapsed());
    }
}

/// Point-in-time view of a [`LatencyRecorder`].
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySnapshot {
    /// Lifetime sample count.
    pub count: u64,
    /// Lifetime sum of nanoseconds (saturating).
    pub sum_ns: u64,
    /// Largest sample, in nanoseconds.
    pub max_ns: u64,
    /// `(phi, nanoseconds)` pairs for [`SNAPSHOT_QUANTILES`]; values are
    /// NaN when the recorder is empty.
    pub quantiles: Vec<(f64, f64)>,
    /// Total GK tuples held across both epochs (space diagnostic).
    pub stored: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_recorder_reports_nan_quantiles() {
        let rec = LatencyRecorder::new();
        assert!(rec.quantile_ns(0.5).is_nan());
        let snap = rec.snapshot();
        assert_eq!(snap.count, 0);
        assert!(snap.quantiles.iter().all(|(_, v)| v.is_nan()));
    }

    #[test]
    fn single_epoch_matches_gk_directly() {
        let rec = LatencyRecorder::with_config(0.01, 1_000);
        for i in 0..500u64 {
            rec.record_ns(i);
        }
        let p50 = rec.quantile_ns(0.5);
        assert!((p50 - 250.0).abs() <= 0.01 * 500.0 + 1.0, "p50 = {p50}");
    }

    #[test]
    fn rotation_keeps_lifetime_aggregates() {
        let window = 100;
        let rec = LatencyRecorder::with_config(0.05, window);
        let n = 12 * window as u64 + 37;
        for i in 0..n {
            rec.record_ns(i + 1);
        }
        assert_eq!(rec.count(), n);
        assert_eq!(rec.sum_ns(), n * (n + 1) / 2);
        assert_eq!(rec.max_ns(), n);
    }

    #[test]
    fn merged_quantile_spans_both_epochs() {
        // First epoch all-small, second all-large: the merged median must
        // fall between the two populations, which neither epoch alone
        // would report.
        let window = 1_000;
        let rec = LatencyRecorder::with_config(0.01, window);
        for _ in 0..window {
            rec.record_ns(10);
        }
        for _ in 0..window {
            rec.record_ns(1_000_000);
        }
        let p50 = rec.quantile_ns(0.5);
        assert!(
            (10.0..=1_000_000.0).contains(&p50),
            "merged p50 out of range: {p50}"
        );
        let p99 = rec.quantile_ns(0.99);
        assert!(p99 >= 900_000.0, "p99 should sit in the large epoch: {p99}");
        let p01 = rec.quantile_ns(0.01);
        assert!(p01 <= 100.0, "p01 should sit in the small epoch: {p01}");
    }

    #[test]
    fn reset_returns_to_fresh_state_and_keeps_recording() {
        let rec = LatencyRecorder::with_config(0.02, 64);
        for i in 0..500u64 {
            rec.record_ns(i);
        }
        rec.reset();
        assert_eq!(rec.count(), 0);
        assert_eq!(rec.sum_ns(), 0);
        assert_eq!(rec.max_ns(), 0);
        assert!(rec.quantile_ns(0.5).is_nan());
        rec.record_ns(42);
        assert_eq!(rec.count(), 1);
        assert_eq!(rec.quantile_ns(0.5), 42.0);
    }

    #[test]
    fn span_records_on_drop() {
        let rec = LatencyRecorder::new();
        {
            let _span = rec.span();
            std::hint::black_box(0);
        }
        assert_eq!(rec.count(), 1);
    }

    #[test]
    fn sum_saturates_instead_of_overflowing() {
        let rec = LatencyRecorder::new();
        rec.record_ns(u64::MAX);
        rec.record_ns(u64::MAX);
        assert_eq!(rec.sum_ns(), u64::MAX);
        assert_eq!(rec.count(), 2);
    }

    #[test]
    #[should_panic(expected = "phi must be in")]
    fn out_of_range_phi_panics() {
        let rec = LatencyRecorder::new();
        rec.record_ns(1);
        let _ = rec.quantile_ns(1.5);
    }

    #[test]
    fn space_stays_bounded_across_many_wraps() {
        let rec = LatencyRecorder::with_config(0.01, 512);
        for i in 0..50_000u64 {
            rec.record_ns(i % 7_919);
        }
        let snap = rec.snapshot();
        assert_eq!(snap.count, 50_000);
        // Two epochs of at most `window` samples each, sketched by GK.
        assert!(snap.stored <= 2 * 512, "stored = {}", snap.stored);
    }
}
