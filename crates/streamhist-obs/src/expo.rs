//! Prometheus text exposition (format 0.0.4) and a strict validator.
//!
//! [`MetricsRegistry::text_exposition`] renders every family as
//! `# HELP` / `# TYPE` comments followed by its samples. Latency
//! summaries become Prometheus `summary` families: one `{quantile="φ"}`
//! sample per published quantile plus `_sum` and `_count` series.
//!
//! **Unit convention:** latency recorders store nanoseconds, but the
//! exposition divides summary quantiles and `_sum` by 1e9 so the wire
//! values are seconds — name summary families with a `_seconds` suffix
//! (the Prometheus base-unit convention). Counters and gauges are passed
//! through untouched.
//!
//! [`parse_exposition`] is the inverse direction: a strict parser used by
//! the test suite (and CI) to prove the output is well-formed — TYPE
//! before samples, valid names, correct escaping, counters finite and
//! non-negative, summary quantile labels in range, no duplicate series.
//!
//! [`MetricsRegistry::json_snapshot`] renders the same gather as a JSON
//! document (nanosecond-domain, nothing rescaled) for the bench bins'
//! committed artifacts.

use crate::registry::{FamilySnapshot, MetricsRegistry, SampleValue};

/// Formats a sample value the way the text format spells specials.
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Escapes a label value: `\` -> `\\`, `"` -> `\"`, newline -> `\n`.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes HELP text: `\` -> `\\`, newline -> `\n`.
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn render_labels(out: &mut String, labels: &[(String, String)]) {
    if labels.is_empty() {
        return;
    }
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label_value(v));
        out.push('"');
    }
    out.push('}');
}

fn render_sample(out: &mut String, name: &str, labels: &[(String, String)], value: f64) {
    out.push_str(name);
    render_labels(out, labels);
    out.push(' ');
    out.push_str(&fmt_value(value));
    out.push('\n');
}

const NS_PER_SEC: f64 = 1e9;

/// Renders gathered families as Prometheus text format 0.0.4.
#[must_use]
pub fn render_exposition(families: &[FamilySnapshot]) -> String {
    let mut out = String::new();
    for family in families {
        if !family.help.is_empty() {
            out.push_str("# HELP ");
            out.push_str(&family.name);
            out.push(' ');
            out.push_str(&escape_help(&family.help));
            out.push('\n');
        }
        out.push_str("# TYPE ");
        out.push_str(&family.name);
        out.push(' ');
        out.push_str(family.kind.exposition_type());
        out.push('\n');
        for series in &family.series {
            match &series.value {
                SampleValue::Counter(v) => {
                    render_sample(&mut out, &family.name, &series.labels, *v as f64);
                }
                SampleValue::Gauge(v) => {
                    render_sample(&mut out, &family.name, &series.labels, *v as f64);
                }
                SampleValue::Float(v) => {
                    render_sample(&mut out, &family.name, &series.labels, *v);
                }
                SampleValue::Summary(snap) => {
                    for &(phi, ns) in &snap.quantiles {
                        let mut labels = series.labels.clone();
                        labels.push(("quantile".to_string(), format!("{phi}")));
                        render_sample(&mut out, &family.name, &labels, ns / NS_PER_SEC);
                    }
                    render_sample(
                        &mut out,
                        &format!("{}_sum", family.name),
                        &series.labels,
                        snap.sum_ns as f64 / NS_PER_SEC,
                    );
                    render_sample(
                        &mut out,
                        &format!("{}_count", family.name),
                        &series.labels,
                        snap.count as f64,
                    );
                }
            }
        }
    }
    out
}

fn escape_json(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_number(v: f64) -> String {
    // JSON has no NaN/Inf; null is the conventional stand-in.
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Renders gathered families as a JSON document: an array of
/// `{name, kind, help, series: [{labels, ...values}]}` objects in the
/// same deterministic order as [`render_exposition`]. Summary values stay
/// in the nanosecond domain (`sum_ns`, `max_ns`, `quantiles_ns`).
#[must_use]
pub fn render_json(families: &[FamilySnapshot]) -> String {
    let mut out = String::from("[");
    for (fi, family) in families.iter().enumerate() {
        if fi > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"kind\":\"{}\",\"help\":\"{}\",\"series\":[",
            escape_json(&family.name),
            family.kind.exposition_type(),
            escape_json(&family.help)
        ));
        for (si, series) in family.series.iter().enumerate() {
            if si > 0 {
                out.push(',');
            }
            out.push_str("{\"labels\":{");
            for (li, (k, v)) in series.labels.iter().enumerate() {
                if li > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)));
            }
            out.push_str("},");
            match &series.value {
                SampleValue::Counter(v) => out.push_str(&format!("\"value\":{v}")),
                SampleValue::Gauge(v) => out.push_str(&format!("\"value\":{v}")),
                SampleValue::Float(v) => out.push_str(&format!("\"value\":{}", json_number(*v))),
                SampleValue::Summary(snap) => {
                    out.push_str(&format!(
                        "\"count\":{},\"sum_ns\":{},\"max_ns\":{},\"stored\":{},\"quantiles_ns\":{{",
                        snap.count, snap.sum_ns, snap.max_ns, snap.stored
                    ));
                    for (qi, (phi, ns)) in snap.quantiles.iter().enumerate() {
                        if qi > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!("\"{phi}\":{}", json_number(*ns)));
                    }
                    out.push('}');
                }
            }
            out.push('}');
        }
        out.push_str("]}");
    }
    out.push(']');
    out
}

impl MetricsRegistry {
    /// Gathers and renders the registry as Prometheus text format 0.0.4.
    #[must_use]
    pub fn text_exposition(&self) -> String {
        render_exposition(&self.gather())
    }

    /// Gathers and renders the registry as a JSON document (see
    /// [`render_json`]).
    #[must_use]
    pub fn json_snapshot(&self) -> String {
        render_json(&self.gather())
    }
}

/// One sample line from a parsed exposition.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSample {
    /// Sample name as written (may carry `_sum`/`_count` suffixes).
    pub name: String,
    /// Labels in source order.
    pub labels: Vec<(String, String)>,
    /// Parsed value (`NaN`, `+Inf`, `-Inf` spellings accepted).
    pub value: f64,
}

fn is_valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn is_valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_value(s: &str) -> Result<f64, String> {
    match s {
        "NaN" => Ok(f64::NAN),
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        s => s.parse().map_err(|_| format!("unparseable value {s:?}")),
    }
}

/// Parses the body of a label block (`k="v",k2="v2"`), unescaping values.
fn parse_label_block(s: &str, line_no: usize) -> Result<Vec<(String, String)>, String> {
    let err = |msg: String| format!("line {line_no}: {msg}");
    let mut labels = Vec::new();
    let mut rest = s;
    loop {
        rest = rest.trim_start_matches([' ', '\t']);
        if rest.is_empty() {
            break;
        }
        let eq = rest
            .find('=')
            .ok_or_else(|| err(format!("label without '=' near {rest:?}")))?;
        let name = rest[..eq].trim();
        if !is_valid_label_name(name) {
            return Err(err(format!("invalid label name {name:?}")));
        }
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return Err(err(format!("label {name:?} value not quoted")));
        }
        rest = &rest[1..];
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, 'n')) => value.push('\n'),
                    other => {
                        return Err(err(format!("bad escape \\{:?}", other.map(|(_, c)| c))));
                    }
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end.ok_or_else(|| err("unterminated label value".to_string()))?;
        if labels.iter().any(|(k, _): &(String, String)| k == name) {
            return Err(err(format!("duplicate label name {name:?}")));
        }
        labels.push((name.to_string(), value));
        rest = &rest[end + 1..];
        rest = rest.trim_start_matches([' ', '\t']);
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped;
        } else if !rest.is_empty() {
            return Err(err(format!("junk after label value: {rest:?}")));
        }
    }
    Ok(labels)
}

/// Strictly parses a Prometheus text-format 0.0.4 exposition.
///
/// Enforced, beyond shape: every sample's family must have a preceding
/// `# TYPE`; at most one TYPE/HELP per family; valid metric and label
/// names; counter samples finite and non-negative; summary quantile
/// samples carry a `quantile` label in `[0, 1]`; `_sum`/`_count` only on
/// summary families; no duplicate (name, labels) series.
///
/// # Errors
///
/// Returns a description of the first violation, prefixed with its line
/// number.
pub fn parse_exposition(text: &str) -> Result<Vec<ParsedSample>, String> {
    use std::collections::{BTreeMap, BTreeSet};

    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut helps: BTreeSet<String> = BTreeSet::new();
    let mut seen_series: BTreeSet<String> = BTreeSet::new();
    let mut samples = Vec::new();

    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let err = |msg: String| format!("line {line_no}: {msg}");
        if line.trim().is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut parts = rest.splitn(2, ' ');
                let name = parts.next().unwrap_or_default();
                let ty = parts.next().unwrap_or_default().trim();
                if !is_valid_metric_name(name) {
                    return Err(err(format!("invalid metric name in TYPE: {name:?}")));
                }
                if !matches!(
                    ty,
                    "counter" | "gauge" | "summary" | "histogram" | "untyped"
                ) {
                    return Err(err(format!("unknown TYPE {ty:?}")));
                }
                if types.insert(name.to_string(), ty.to_string()).is_some() {
                    return Err(err(format!("duplicate TYPE for {name:?}")));
                }
            } else if let Some(rest) = comment.strip_prefix("HELP ") {
                let name = rest.split(' ').next().unwrap_or_default();
                if !is_valid_metric_name(name) {
                    return Err(err(format!("invalid metric name in HELP: {name:?}")));
                }
                if !helps.insert(name.to_string()) {
                    return Err(err(format!("duplicate HELP for {name:?}")));
                }
                if types.contains_key(name) {
                    return Err(err(format!("HELP for {name:?} must precede its TYPE")));
                }
            }
            // Other comments are legal and ignored.
            continue;
        }

        // Sample line: name[{labels}] value [timestamp]
        let name_end = line
            .find(['{', ' ', '\t'])
            .ok_or_else(|| err("sample line without value".to_string()))?;
        let name = &line[..name_end];
        if !is_valid_metric_name(name) {
            return Err(err(format!("invalid sample name {name:?}")));
        }
        let mut rest = &line[name_end..];
        let labels = if let Some(stripped) = rest.strip_prefix('{') {
            let close = stripped
                .find('}')
                .ok_or_else(|| err("unterminated label block".to_string()))?;
            // A '}' inside an escaped value cannot occur: '}' is never
            // produced by our escaper, and the validator only accepts
            // expositions whose label values escape '"' and '\'. A raw
            // '}' inside a quoted value would be caught below as junk.
            let (block, after) = stripped.split_at(close);
            rest = &after[1..];
            parse_label_block(block, line_no)?
        } else {
            Vec::new()
        };
        let mut fields = rest.split_whitespace();
        let value_str = fields
            .next()
            .ok_or_else(|| err("sample line without value".to_string()))?;
        let value = parse_value(value_str).map_err(&err)?;
        if let Some(ts) = fields.next() {
            if ts.parse::<i64>().is_err() {
                return Err(err(format!("bad timestamp {ts:?}")));
            }
        }
        if fields.next().is_some() {
            return Err(err("trailing junk after timestamp".to_string()));
        }

        // Resolve the family: exact TYPE match, or a summary suffix.
        let (family, is_suffix) = match types.get(name) {
            Some(_) => (name.to_string(), false),
            None => {
                let base = name
                    .strip_suffix("_sum")
                    .or_else(|| name.strip_suffix("_count"));
                match base {
                    Some(base)
                        if matches!(
                            types.get(base).map(String::as_str),
                            Some("summary" | "histogram")
                        ) =>
                    {
                        (base.to_string(), true)
                    }
                    _ => {
                        return Err(err(format!("sample {name:?} has no preceding TYPE")));
                    }
                }
            }
        };
        let ty = types.get(&family).expect("family resolved above").clone();
        match ty.as_str() {
            "counter" if !value.is_finite() || value < 0.0 => {
                return Err(err(format!("counter {name:?} must be finite >= 0")));
            }
            "summary" if !is_suffix => {
                let q = labels
                    .iter()
                    .find(|(k, _)| k == "quantile")
                    .ok_or_else(|| err(format!("summary sample {name:?} missing quantile")))?;
                let phi: f64 =
                    q.1.parse()
                        .map_err(|_| err(format!("bad quantile value {:?}", q.1)))?;
                if !(0.0..=1.0).contains(&phi) {
                    return Err(err(format!("quantile {phi} outside [0, 1]")));
                }
            }
            "summary" if !value.is_finite() || value < 0.0 => {
                return Err(err(format!("summary series {name:?} must be finite >= 0")));
            }
            _ => {}
        }

        let mut key_labels: Vec<_> = labels.clone();
        key_labels.sort();
        let key = format!("{name}|{key_labels:?}");
        if !seen_series.insert(key) {
            return Err(err(format!("duplicate series for {name:?}")));
        }
        samples.push(ParsedSample {
            name: name.to_string(),
            labels,
            value,
        });
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn populated_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter_with(
            "streamhist_pushes_total",
            "Accepted pushes.",
            &[("shard", "0")],
        )
        .inc_by(41);
        reg.counter_with(
            "streamhist_pushes_total",
            "Accepted pushes.",
            &[("shard", "1")],
        )
        .inc_by(1);
        reg.gauge("streamhist_queue_depth", "In-flight commands.")
            .set(-3);
        reg.float_gauge("streamhist_sse", "Current SSE estimate.")
            .set(2.5);
        let lat = reg.latency("streamhist_push_seconds", "Push latency.");
        for i in 1..=100u64 {
            lat.record_ns(i * 1_000);
        }
        reg
    }

    #[test]
    fn exposition_round_trips_through_the_validator() {
        let reg = populated_registry();
        let text = reg.text_exposition();
        let samples = parse_exposition(&text).expect("exposition must validate");
        // 2 counter series + 1 gauge + 1 float gauge + (4 quantiles + sum + count)
        assert_eq!(samples.len(), 2 + 1 + 1 + 6);
        let sum = samples
            .iter()
            .filter(|s| s.name == "streamhist_pushes_total")
            .map(|s| s.value)
            .sum::<f64>();
        assert_eq!(sum, 42.0);
    }

    #[test]
    fn summary_values_are_rescaled_to_seconds() {
        let reg = MetricsRegistry::new();
        let lat = reg.latency("op_seconds", "op");
        lat.record_ns(2_000_000_000); // 2 seconds
        let samples = parse_exposition(&reg.text_exposition()).expect("valid");
        let sum = samples
            .iter()
            .find(|s| s.name == "op_seconds_sum")
            .expect("sum");
        assert_eq!(sum.value, 2.0);
        let count = samples
            .iter()
            .find(|s| s.name == "op_seconds_count")
            .expect("count");
        assert_eq!(count.value, 1.0);
        let p50 = samples
            .iter()
            .find(|s| {
                s.name == "op_seconds"
                    && s.labels.iter().any(|(k, v)| k == "quantile" && v == "0.5")
            })
            .expect("p50 sample");
        assert_eq!(p50.value, 2.0);
    }

    #[test]
    fn empty_summary_exposes_nan_quantiles_and_validates() {
        let reg = MetricsRegistry::new();
        let _ = reg.latency("idle_seconds", "never recorded");
        let text = reg.text_exposition();
        assert!(text.contains(" NaN"), "expected NaN spelling:\n{text}");
        parse_exposition(&text).expect("NaN quantiles are legal");
    }

    #[test]
    fn label_values_are_escaped_and_unescaped() {
        let reg = MetricsRegistry::new();
        reg.counter_with("esc_total", "", &[("path", "a\\b\"c\nd")])
            .inc();
        let text = reg.text_exposition();
        let samples = parse_exposition(&text).expect("escaped output validates");
        assert_eq!(samples[0].labels[0].1, "a\\b\"c\nd");
    }

    #[test]
    fn validator_rejects_sample_without_type() {
        let err = parse_exposition("lonely_metric 1\n").expect_err("must fail");
        assert!(err.contains("no preceding TYPE"), "{err}");
    }

    #[test]
    fn validator_rejects_negative_counter() {
        let text = "# TYPE bad_total counter\nbad_total -1\n";
        let err = parse_exposition(text).expect_err("must fail");
        assert!(err.contains("finite >= 0"), "{err}");
    }

    #[test]
    fn validator_rejects_duplicate_series() {
        let text = "# TYPE x_total counter\nx_total{a=\"1\"} 1\nx_total{a=\"1\"} 2\n";
        let err = parse_exposition(text).expect_err("must fail");
        assert!(err.contains("duplicate series"), "{err}");
    }

    #[test]
    fn validator_rejects_quantile_out_of_range() {
        let text = "# TYPE s summary\ns{quantile=\"1.5\"} 1\n";
        let err = parse_exposition(text).expect_err("must fail");
        assert!(err.contains("outside [0, 1]"), "{err}");
    }

    #[test]
    fn validator_accepts_timestamps_and_comments() {
        let text = "# a freeform comment\n# TYPE t_total counter\nt_total 5 1712345678\n";
        let samples = parse_exposition(text).expect("valid");
        assert_eq!(samples[0].value, 5.0);
    }

    #[test]
    fn json_snapshot_contains_every_family() {
        let reg = populated_registry();
        let json = reg.json_snapshot();
        for family in [
            "streamhist_pushes_total",
            "streamhist_queue_depth",
            "streamhist_sse",
            "streamhist_push_seconds",
        ] {
            assert!(json.contains(family), "missing {family} in {json}");
        }
        assert!(json.contains("\"sum_ns\""), "{json}");
        // Braces balance — cheap structural sanity without a JSON parser.
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn json_escapes_control_characters() {
        let reg = MetricsRegistry::new();
        reg.counter_with("j_total", "tab\there", &[("k", "line\nbreak")])
            .inc();
        let json = reg.json_snapshot();
        assert!(json.contains("tab\\there"), "{json}");
        assert!(json.contains("line\\nbreak"), "{json}");
    }
}
