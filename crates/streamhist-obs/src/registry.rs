//! The metric registry: named, labeled families of lock-free cells.
//!
//! A [`MetricsRegistry`] owns a map `name -> family`, where a family fixes
//! the metric kind and help text and holds one cell per distinct label
//! set. Registration returns a *handle* ([`Counter`], [`Gauge`],
//! [`FloatGauge`], or an `Arc<LatencyRecorder>`) that callers keep on
//! their hot path; updating a handle is a single `Relaxed` atomic
//! operation (or, for latency summaries, one short mutex-guarded GK
//! insertion). The registry's own mutex is taken only when registering a
//! new series or gathering a snapshot for exposition, never per sample.
//!
//! Registering the same `(name, labels)` pair twice returns a handle to
//! the *same* cell, so independent subsystems can share a counter without
//! coordinating. Registering the same name with a different kind is a
//! programming error and panics.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::latency::{LatencyRecorder, LatencySnapshot};

/// A monotonically increasing event count.
///
/// Cloning is cheap (an `Arc` bump); all clones address the same cell.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds one.
    #[inline(always)]
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline(always)]
    pub fn inc_by(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// An integer value that can go up and down (queue depths, live object
/// counts). Stored as the two's-complement bits of an `i64` so transient
/// decrements below zero are representable.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Adds one.
    #[inline(always)]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    #[inline(always)]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Adds `delta` (may be negative).
    #[inline(always)]
    pub fn add(&self, delta: i64) {
        // i64 and u64 wrapping addition agree bit-for-bit, so storing the
        // two's-complement bits and using fetch_add keeps this lock-free.
        self.cell.fetch_add(delta as u64, Ordering::Relaxed);
    }

    /// Overwrites the value.
    #[inline(always)]
    pub fn set(&self, value: i64) {
        self.cell.store(value as u64, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed) as i64
    }
}

/// A floating-point gauge (ratios, error bounds, seconds). Stored as the
/// raw `f64` bits in an `AtomicU64`; `set`/`get` are single atomic ops.
#[derive(Debug, Clone)]
pub struct FloatGauge {
    bits: Arc<AtomicU64>,
}

impl Default for FloatGauge {
    fn default() -> Self {
        Self {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }
}

impl FloatGauge {
    /// Overwrites the value.
    #[inline(always)]
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// The kind of a metric family (fixed at first registration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone event count; exposed as a Prometheus `counter`.
    Counter,
    /// Signed integer level; exposed as a Prometheus `gauge`.
    Gauge,
    /// Floating-point level; exposed as a Prometheus `gauge`.
    FloatGauge,
    /// GK-backed latency distribution; exposed as a Prometheus `summary`.
    Summary,
}

impl MetricKind {
    /// The `# TYPE` keyword used in the text exposition.
    #[must_use]
    pub fn exposition_type(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge | MetricKind::FloatGauge => "gauge",
            MetricKind::Summary => "summary",
        }
    }
}

#[derive(Debug, Clone)]
enum Cell {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Float(Arc<AtomicU64>),
    Summary(Arc<LatencyRecorder>),
}

#[derive(Debug)]
struct Family {
    help: String,
    kind: MetricKind,
    series: BTreeMap<Vec<(String, String)>, Cell>,
}

/// The value of one series at gather time.
#[derive(Debug, Clone)]
pub enum SampleValue {
    /// Counter reading.
    Counter(u64),
    /// Integer gauge reading.
    Gauge(i64),
    /// Float gauge reading.
    Float(f64),
    /// Latency summary snapshot (count, sum, max, quantiles).
    Summary(LatencySnapshot),
}

/// One labeled series inside a [`FamilySnapshot`].
#[derive(Debug, Clone)]
pub struct SeriesSnapshot {
    /// Sorted `(label, value)` pairs identifying the series.
    pub labels: Vec<(String, String)>,
    /// The sampled value.
    pub value: SampleValue,
}

/// A point-in-time copy of one metric family, as returned by
/// [`MetricsRegistry::gather`].
#[derive(Debug, Clone)]
pub struct FamilySnapshot {
    /// Family name (valid per Prometheus naming rules).
    pub name: String,
    /// Help text from the first registration.
    pub help: String,
    /// Family kind.
    pub kind: MetricKind,
    /// All series, in deterministic (label-sorted) order.
    pub series: Vec<SeriesSnapshot>,
}

/// A concurrent registry of metric families.
///
/// See the [module docs](self) for the handle/registration model.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: Mutex<BTreeMap<String, Family>>,
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn normalize_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| {
            assert!(valid_label_name(k), "invalid label name {k:?}");
            ((*k).to_string(), (*v).to_string())
        })
        .collect();
    out.sort();
    out.dedup_by(|a, b| a.0 == b.0);
    out
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
        make: impl FnOnce() -> Cell,
    ) -> Cell {
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        let labels = normalize_labels(labels);
        let mut families = self.families.lock().expect("registry mutex poisoned");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric {name:?} already registered with kind {:?}, requested {kind:?}",
            family.kind
        );
        family.series.entry(labels).or_insert_with(make).clone()
    }

    /// Registers (or re-opens) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers (or re-opens) a labeled counter.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, labels, MetricKind::Counter, || {
            Cell::Counter(Arc::new(AtomicU64::new(0)))
        }) {
            Cell::Counter(cell) => Counter { cell },
            _ => unreachable!("kind checked by register"),
        }
    }

    /// Registers (or re-opens) an unlabeled integer gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or re-opens) a labeled integer gauge.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, labels, MetricKind::Gauge, || {
            Cell::Gauge(Arc::new(AtomicU64::new(0)))
        }) {
            Cell::Gauge(cell) => Gauge { cell },
            _ => unreachable!("kind checked by register"),
        }
    }

    /// Registers (or re-opens) an unlabeled float gauge.
    pub fn float_gauge(&self, name: &str, help: &str) -> FloatGauge {
        self.float_gauge_with(name, help, &[])
    }

    /// Registers (or re-opens) a labeled float gauge.
    pub fn float_gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> FloatGauge {
        match self.register(name, help, labels, MetricKind::FloatGauge, || {
            Cell::Float(Arc::new(AtomicU64::new(0f64.to_bits())))
        }) {
            Cell::Float(bits) => FloatGauge { bits },
            _ => unreachable!("kind checked by register"),
        }
    }

    /// Registers (or re-opens) an unlabeled latency summary with the
    /// default recorder configuration.
    pub fn latency(&self, name: &str, help: &str) -> Arc<LatencyRecorder> {
        self.latency_with(name, help, &[])
    }

    /// Registers (or re-opens) a labeled latency summary with the default
    /// recorder configuration (see [`LatencyRecorder::new`]).
    pub fn latency_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<LatencyRecorder> {
        match self.register(name, help, labels, MetricKind::Summary, || {
            Cell::Summary(Arc::new(LatencyRecorder::new()))
        }) {
            Cell::Summary(rec) => rec,
            _ => unreachable!("kind checked by register"),
        }
    }

    /// Point-in-time copy of every family and series, families and series
    /// both in deterministic sorted order.
    #[must_use]
    pub fn gather(&self) -> Vec<FamilySnapshot> {
        let families = self.families.lock().expect("registry mutex poisoned");
        families
            .iter()
            .map(|(name, family)| FamilySnapshot {
                name: name.clone(),
                help: family.help.clone(),
                kind: family.kind,
                series: family
                    .series
                    .iter()
                    .map(|(labels, cell)| SeriesSnapshot {
                        labels: labels.clone(),
                        value: match cell {
                            Cell::Counter(c) => SampleValue::Counter(c.load(Ordering::Relaxed)),
                            Cell::Gauge(c) => SampleValue::Gauge(c.load(Ordering::Relaxed) as i64),
                            Cell::Float(c) => {
                                SampleValue::Float(f64::from_bits(c.load(Ordering::Relaxed)))
                            }
                            Cell::Summary(rec) => SampleValue::Summary(rec.snapshot()),
                        },
                    })
                    .collect(),
            })
            .collect()
    }
}

/// The process-wide registry.
///
/// Library code that has no registry handy (e.g. the kernel tracer)
/// publishes here; `stream_cli --metrics-addr` and the bench bins expose
/// it. First call initializes it; it is never torn down.
pub fn global() -> &'static Arc<MetricsRegistry> {
    static GLOBAL: OnceLock<Arc<MetricsRegistry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(MetricsRegistry::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_and_labels_share_a_cell() {
        let reg = MetricsRegistry::new();
        let a = reg.counter_with("hits_total", "hits", &[("shard", "0")]);
        let b = reg.counter_with("hits_total", "ignored help", &[("shard", "0")]);
        a.inc_by(3);
        b.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(b.get(), 4);
    }

    #[test]
    fn label_order_does_not_split_series() {
        let reg = MetricsRegistry::new();
        let a = reg.counter_with("x_total", "", &[("a", "1"), ("b", "2")]);
        let b = reg.counter_with("x_total", "", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn gauge_goes_negative_and_back() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("depth", "queue depth");
        g.dec();
        g.dec();
        assert_eq!(g.get(), -2);
        g.add(5);
        assert_eq!(g.get(), 3);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }

    #[test]
    fn float_gauge_round_trips() {
        let reg = MetricsRegistry::new();
        let g = reg.float_gauge("ratio", "");
        assert_eq!(g.get(), 0.0);
        g.set(0.12345);
        assert_eq!(g.get(), 0.12345);
        g.set(f64::NEG_INFINITY);
        assert_eq!(g.get(), f64::NEG_INFINITY);
    }

    #[test]
    #[should_panic(expected = "already registered with kind")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("thing", "");
        let _ = reg.gauge("thing", "");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_metric_name_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("9starts_with_digit", "");
    }

    #[test]
    #[should_panic(expected = "invalid label name")]
    fn bad_label_name_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter_with("ok_total", "", &[("bad-dash", "v")]);
    }

    #[test]
    fn gather_is_deterministically_ordered() {
        let reg = MetricsRegistry::new();
        reg.counter_with("b_total", "", &[("s", "1")]).inc();
        reg.counter_with("b_total", "", &[("s", "0")]).inc();
        reg.gauge("a_level", "").set(2);
        let snap = reg.gather();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].name, "a_level");
        assert_eq!(snap[1].name, "b_total");
        let labels: Vec<_> = snap[1]
            .series
            .iter()
            .map(|s| s.labels[0].1.clone())
            .collect();
        assert_eq!(labels, vec!["0", "1"]);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = Arc::clone(global());
        let b = Arc::clone(global());
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn handles_are_lock_free_across_threads() {
        let reg = Arc::new(MetricsRegistry::new());
        let c = reg.counter("cross_total", "");
        let mut joins = Vec::new();
        for _ in 0..4 {
            let c = c.clone();
            joins.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    c.inc();
                }
            }));
        }
        for j in joins {
            j.join().expect("worker panicked");
        }
        assert_eq!(c.get(), 40_000);
    }
}
