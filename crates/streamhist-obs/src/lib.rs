//! # streamhist-obs
//!
//! Self-hosted telemetry for the streamhist workspace: a zero-external-
//! dependency metrics layer whose latency quantiles are maintained by the
//! workspace's *own* streaming summaries (a rotating pair of
//! Greenwald–Khanna sketches from `streamhist-quantile`), dogfooding the
//! reproduced paper's algorithms as the metrics backend.
//!
//! The pieces:
//!
//! * [`MetricsRegistry`] — named, labeled metric families. Hot-path
//!   handles ([`Counter`], [`Gauge`], [`FloatGauge`]) are cheap clones of
//!   an `Arc<AtomicU64>`; updating one is a single `Relaxed` atomic op,
//!   no lock. The registry's interior `Mutex` is touched only at
//!   registration and scrape time.
//! * [`LatencyRecorder`] — a summary-type metric (count / sum / max /
//!   quantiles) backed by two rotating [`GkSummary`](streamhist_quantile::GkSummary)
//!   epochs, so p50/p95/p99 come from the paper's quantile substrate in
//!   bounded memory. See the module docs of [`latency`] for the rotation
//!   and combined-quantile semantics.
//! * [`text_exposition`](MetricsRegistry::text_exposition) — the
//!   Prometheus text format (version 0.0.4), plus [`parse_exposition`], a
//!   strict validator used by the test suite (and available to callers)
//!   to check any exposition output.
//! * [`ExpositionServer`] — a tiny blocking `std::net::TcpListener` loop
//!   serving the exposition over HTTP for `curl`/Prometheus scrapes.
//! * [`json_snapshot`](MetricsRegistry::json_snapshot) — a JSON dump of
//!   the same gather, reused by the bench binaries for committed
//!   `BENCH_*.json` artifacts.
//!
//! Nothing in this crate calls back into the instrumented code paths: the
//! recorder's GK backend is a plain value-domain sketch with no histogram
//! kernel involvement, so instrumenting the kernel with these types cannot
//! recurse.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expo;
pub mod http;
pub mod latency;
pub mod ratio;
pub mod recorder;
pub mod registry;
pub mod sliding;

pub use expo::{parse_exposition, ParsedSample};
pub use http::{read_line_bounded, ExpositionOptions, ExpositionServer, HealthStatus, MAX_LINE};
pub use latency::{LatencyRecorder, LatencySnapshot, LatencySpan};
pub use ratio::RatioTracker;
pub use recorder::{Event, EventKind, FlightRecorder, DEFAULT_CAPACITY};
pub use registry::{
    global, Counter, FamilySnapshot, FloatGauge, Gauge, MetricKind, MetricsRegistry, SampleValue,
    SeriesSnapshot,
};
pub use sliding::{RateFamily, SlidingSum};
