//! O(1)-word sliding-window sums, after Ben Basat et al., "Efficient
//! Summing over Sliding Windows".
//!
//! An exact sliding-window sum needs memory proportional to the window
//! (one word per bucket). The two-frame estimator below keeps **two
//! words** per window and trades them for a bounded additive error: time
//! is cut into frames of length `W` (the window), and the estimate at
//! time `t` inside the current frame is
//!
//! ```text
//! estimate(t) = prev * (1 - elapsed/W) + cur
//! ```
//!
//! where `prev` is the previous frame's total, `cur` is the running total
//! of the current frame, and `elapsed` is how far into the current frame
//! `t` is. The true window `[t - W, t]` overlaps exactly `1 - elapsed/W`
//! of the previous frame, so the only error is assuming the previous
//! frame's arrivals were uniform: the estimate is within one previous
//! frame's *skew* of the truth and never off by more than `prev` itself.
//! That is precisely the accuracy class the paper shows is optimal for
//! o(window) memory, and it is plenty for "events per second" gauges.
//!
//! [`SlidingSum`] is one window; [`RateFamily`] bundles the standard
//! 1s/10s/60s triple behind a single mutex for the flight recorder.

use std::sync::{Mutex, PoisonError};

/// A sliding-window sum over a fixed window, in O(1) words.
///
/// Timestamps are caller-supplied milliseconds on any monotonic scale
/// (the flight recorder uses milliseconds since its creation). Feeding a
/// timestamp older than the current frame start is treated as "now" at
/// the frame start — the estimator never panics or goes backwards.
#[derive(Debug, Clone)]
pub struct SlidingSum {
    window_ms: u64,
    /// Start of the current frame on the caller's clock.
    frame_start: u64,
    /// Total of the previous (completed) frame.
    prev: f64,
    /// Running total of the current frame.
    cur: f64,
}

impl SlidingSum {
    /// A sum over a window of `window_ms` milliseconds (clamped to ≥ 1).
    #[must_use]
    pub fn new(window_ms: u64) -> Self {
        Self {
            window_ms: window_ms.max(1),
            frame_start: 0,
            prev: 0.0,
            cur: 0.0,
        }
    }

    /// The window length in milliseconds.
    #[must_use]
    pub fn window_ms(&self) -> u64 {
        self.window_ms
    }

    /// Advances frames so `now` falls inside the current frame.
    fn roll(&mut self, now: u64) {
        if now < self.frame_start {
            return; // stale clock reading; stay in this frame
        }
        let elapsed = now - self.frame_start;
        if elapsed < self.window_ms {
            return;
        }
        if elapsed >= 2 * self.window_ms {
            // A gap of two or more whole frames: both frames are empty.
            self.prev = 0.0;
            self.cur = 0.0;
            // Align the frame start to the window grid so repeated long
            // gaps do not drift it.
            self.frame_start = now - (elapsed % self.window_ms);
        } else {
            self.prev = self.cur;
            self.cur = 0.0;
            self.frame_start += self.window_ms;
        }
    }

    /// Adds `n` at time `now`.
    pub fn add(&mut self, now: u64, n: f64) {
        self.roll(now);
        self.cur += n;
    }

    /// The estimated sum over `[now - window, now]`.
    ///
    /// Additive error is at most the previous frame's total (zero when
    /// arrivals are uniform within frames).
    #[must_use]
    pub fn estimate(&mut self, now: u64) -> f64 {
        self.roll(now);
        let elapsed = now.saturating_sub(self.frame_start).min(self.window_ms);
        let carry = 1.0 - (elapsed as f64 / self.window_ms as f64);
        self.prev * carry + self.cur
    }

    /// The estimated sum expressed as a per-second rate.
    #[must_use]
    pub fn rate_per_sec(&mut self, now: u64) -> f64 {
        self.estimate(now) * 1000.0 / self.window_ms as f64
    }
}

/// A small family of [`SlidingSum`]s over different windows, sharing one
/// lock — the flight recorder's events-per-second gauges.
#[derive(Debug)]
pub struct RateFamily {
    /// `(window_seconds, sum)` pairs, shortest window first.
    windows: Mutex<Vec<(u64, SlidingSum)>>,
}

impl RateFamily {
    /// A family over the given windows (in seconds, deduplicated order
    /// preserved).
    #[must_use]
    pub fn new(window_secs: &[u64]) -> Self {
        Self {
            windows: Mutex::new(
                window_secs
                    .iter()
                    .map(|&s| (s, SlidingSum::new(s.saturating_mul(1000))))
                    .collect(),
            ),
        }
    }

    /// The standard 1s / 10s / 60s triple.
    #[must_use]
    pub fn standard() -> Self {
        Self::new(&[1, 10, 60])
    }

    /// Records one occurrence at `now_ms`.
    pub fn observe(&self, now_ms: u64) {
        let mut windows = self.windows.lock().unwrap_or_else(PoisonError::into_inner);
        for (_, sum) in windows.iter_mut() {
            sum.add(now_ms, 1.0);
        }
    }

    /// Per-second rates at `now_ms`, as `(window_seconds, rate)` pairs.
    #[must_use]
    pub fn rates(&self, now_ms: u64) -> Vec<(u64, f64)> {
        let mut windows = self.windows.lock().unwrap_or_else(PoisonError::into_inner);
        windows
            .iter_mut()
            .map(|(secs, sum)| (*secs, sum.rate_per_sec(now_ms)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_within_one_frame() {
        let mut s = SlidingSum::new(1000);
        s.add(0, 3.0);
        s.add(500, 4.0);
        assert!((s.estimate(900) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn previous_frame_decays_linearly() {
        let mut s = SlidingSum::new(1000);
        s.add(100, 10.0);
        // Roll into the next frame; prev = 10, cur = 0.
        s.add(1000, 0.0);
        let half = s.estimate(1500);
        assert!((half - 5.0).abs() < 1e-9, "{half}");
        let end = s.estimate(1999);
        assert!(end < 0.1, "{end}");
    }

    #[test]
    fn long_gap_zeroes_both_frames() {
        let mut s = SlidingSum::new(1000);
        s.add(0, 100.0);
        assert!(s.estimate(10_000) < 1e-9);
        // And the estimator still works after the gap.
        s.add(10_100, 2.0);
        assert!((s.estimate(10_200) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn stale_timestamps_do_not_panic_or_reverse() {
        let mut s = SlidingSum::new(1000);
        s.add(5000, 1.0);
        s.add(10, 1.0); // stale: counted into the current frame
        assert!(s.estimate(5000) >= 2.0 - 1e-9);
    }

    #[test]
    fn rate_is_sum_scaled_to_seconds() {
        let mut s = SlidingSum::new(10_000);
        for t in 0..10u64 {
            s.add(t * 1000, 5.0); // 5 events/sec for 10s
        }
        let rate = s.rate_per_sec(9_500);
        assert!((rate - 5.0).abs() < 1.0, "{rate}");
    }

    #[test]
    fn family_observes_all_windows() {
        let fam = RateFamily::standard();
        for t in 0..100u64 {
            fam.observe(t * 10); // 100 events over 1s
        }
        let rates = fam.rates(999);
        assert_eq!(rates.len(), 3);
        assert_eq!(rates[0].0, 1);
        assert!(rates[0].1 > 50.0, "1s window sees ~100/s: {rates:?}");
        assert!(rates[2].1 > 0.0, "60s window sees events too");
    }
}
