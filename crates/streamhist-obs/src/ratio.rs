//! Derived ratio metrics: a gauge that tracks the quotient of two
//! counters.
//!
//! Several health signals in the workspace are *ratios of monotone
//! totals* — the flagship one being **checkpoint amplification**, bytes
//! written to the durable store divided by bytes ingested. Exposing only
//! the two counters forces every dashboard to re-derive the quotient;
//! exposing only a gauge loses the underlying totals. [`RatioTracker`]
//! keeps all three consistent: the counters are the source of truth, and
//! the gauge is refreshed from them on every update, so a scrape always
//! sees a quotient consistent with (at worst one update behind) the
//! totals it ships alongside.

use crate::registry::{Counter, FloatGauge};

/// Two counters plus a [`FloatGauge`] maintained as their quotient.
///
/// All three cells are ordinary registry handles, so they can be
/// registered series (shared with a scrape endpoint) or private cells —
/// [`RatioTracker::default`] gives an unregistered instance.
///
/// The quotient is defined as `0.0` while the denominator is zero (a
/// just-booted process has amplified nothing, not infinitely).
#[derive(Debug, Default, Clone)]
pub struct RatioTracker {
    numerator: Counter,
    denominator: Counter,
    ratio: FloatGauge,
}

impl RatioTracker {
    /// Builds a tracker over existing cells (typically registered via
    /// [`MetricsRegistry`](crate::MetricsRegistry) so the exposition and
    /// this tracker share atomics).
    #[must_use]
    pub fn new(numerator: Counter, denominator: Counter, ratio: FloatGauge) -> Self {
        let this = Self {
            numerator,
            denominator,
            ratio,
        };
        this.refresh();
        this
    }

    /// Adds to the numerator and refreshes the gauge.
    pub fn add_numerator(&self, by: u64) {
        self.numerator.inc_by(by);
        self.refresh();
    }

    /// Adds to the denominator and refreshes the gauge.
    pub fn add_denominator(&self, by: u64) {
        self.denominator.inc_by(by);
        self.refresh();
    }

    /// Current numerator total.
    #[must_use]
    pub fn numerator(&self) -> u64 {
        self.numerator.get()
    }

    /// Current denominator total.
    #[must_use]
    pub fn denominator(&self) -> u64 {
        self.denominator.get()
    }

    /// The quotient, `0.0` while the denominator is zero.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        let den = self.denominator.get();
        if den == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.numerator.get() as f64 / den as f64
            }
        }
    }

    /// Recomputes the gauge from the counters. Called automatically by the
    /// `add_*` methods; callers that increment the underlying cells
    /// directly can refresh explicitly.
    pub fn refresh(&self) {
        self.ratio.set(self.ratio());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    #[test]
    fn quotient_tracks_the_counters() {
        let t = RatioTracker::default();
        assert_eq!(t.ratio(), 0.0, "zero denominator reads 0, not NaN/inf");
        t.add_denominator(1000);
        t.add_numerator(1500);
        assert!((t.ratio() - 1.5).abs() < 1e-12);
        assert_eq!(t.numerator(), 1500);
        assert_eq!(t.denominator(), 1000);
    }

    #[test]
    fn registered_cells_expose_the_same_values() {
        let reg = MetricsRegistry::new();
        let t = RatioTracker::new(
            reg.counter("test_bytes_written_total", "w"),
            reg.counter("test_bytes_ingested_total", "i"),
            reg.float_gauge("test_amplification", "ratio"),
        );
        t.add_denominator(100);
        t.add_numerator(250);
        let text = reg.text_exposition();
        assert!(text.contains("test_bytes_written_total 250"));
        assert!(text.contains("test_bytes_ingested_total 100"));
        assert!(text.contains("test_amplification 2.5"));
    }
}
