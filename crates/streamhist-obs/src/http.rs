//! A minimal blocking HTTP scrape endpoint over `std::net::TcpListener`.
//!
//! [`ExpositionServer`] runs a single accept loop on a background thread
//! and answers `GET /` or `GET /metrics` with the registry's
//! [`text_exposition`](crate::MetricsRegistry::text_exposition). It
//! speaks just enough HTTP/1.1 for `curl` and a Prometheus scraper:
//! status line, `Content-Type: text/plain; version=0.0.4`,
//! `Content-Length`, `Connection: close`. One request per connection,
//! handled inline on the accept thread — scrapes are rare and cheap, so
//! there is no per-connection thread spawn to manage.
//!
//! The listener runs in non-blocking mode so the loop can poll a shutdown
//! flag between accepts; dropping the server (or calling
//! [`shutdown`](ExpositionServer::shutdown)) stops the loop and joins the
//! thread.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::recorder::FlightRecorder;
use crate::registry::MetricsRegistry;

/// How long the accept loop sleeps between polls when idle.
const IDLE_POLL: Duration = Duration::from_millis(25);
/// Per-connection read/write deadline — protects the loop from a stalled
/// or malicious client holding the (single-threaded) server hostage.
const IO_TIMEOUT: Duration = Duration::from_millis(500);

/// What a [`health` closure](ExpositionOptions::health) reports: whether
/// every shard is Live, and a one-line per-shard summary for the 503 body
/// when one is not.
#[derive(Debug, Clone)]
pub struct HealthStatus {
    /// `true` iff every shard is Live.
    pub healthy: bool,
    /// One-line per-shard state summary (e.g. `shard0=Live shard1=Dead`).
    pub summary: String,
}

/// A supervisor-aware health callback for `/healthz`. The closure runs on
/// the scrape thread, so it must be cheap and never block on the fleet's
/// hot path.
pub type HealthSource = Arc<dyn Fn() -> HealthStatus + Send + Sync>;

/// Optional extras for [`ExpositionServer::start_with`].
#[derive(Default)]
pub struct ExpositionOptions {
    /// When set, `GET /events` dumps the recorder's retained tail as text
    /// (`?after=N` pages by sequence number). Absent → 404.
    pub recorder: Option<Arc<FlightRecorder>>,
    /// When set, `GET /healthz` answers 200 when
    /// [`healthy`](HealthStatus::healthy), else 503 with the summary as
    /// the body. Absent → 404.
    pub health: Option<HealthSource>,
}

impl std::fmt::Debug for ExpositionOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExpositionOptions")
            .field("recorder", &self.recorder.is_some())
            .field("health", &self.health.is_some())
            .finish()
    }
}

/// A background metrics scrape endpoint. See the [module docs](self).
#[derive(Debug)]
pub struct ExpositionServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ExpositionServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9184"`, port 0 for ephemeral) and
    /// starts serving `registry` on a background thread.
    ///
    /// # Errors
    ///
    /// Returns the bind/configure error if the listener cannot be set up.
    pub fn start(addr: impl ToSocketAddrs, registry: Arc<MetricsRegistry>) -> io::Result<Self> {
        Self::start_with(addr, registry, ExpositionOptions::default())
    }

    /// Like [`start`](Self::start), but with a flight recorder behind
    /// `GET /events` and/or a health callback behind `GET /healthz`.
    ///
    /// # Errors
    ///
    /// Returns the bind/configure error if the listener cannot be set up.
    pub fn start_with(
        addr: impl ToSocketAddrs,
        registry: Arc<MetricsRegistry>,
        options: ExpositionOptions,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("streamhist-obs-http".to_string())
            .spawn(move || accept_loop(&listener, &registry, &options, &stop_flag))?;
        Ok(Self {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ExpositionServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(
    listener: &TcpListener,
    registry: &MetricsRegistry,
    options: &ExpositionOptions,
    stop: &AtomicBool,
) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Best-effort: a failed scrape must never take the server
                // (or the instrumented process) down.
                let _ = serve_one(stream, registry, options);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(IDLE_POLL);
            }
            Err(_) => {
                // Transient accept errors (e.g. ECONNABORTED): back off
                // briefly and keep listening.
                std::thread::sleep(IDLE_POLL);
            }
        }
    }
}

/// Upper bound on one request line, in bytes. Anything longer is cut off
/// there — a legitimate scrape's request line is tens of bytes, so the
/// bound only trips on garbage (and keeps a hostile client from growing
/// the buffer without limit).
pub const MAX_LINE: usize = 1024;

/// Reads one `\r\n`- (or `\n`-) terminated line from `stream`, bounded at
/// `max` bytes.
///
/// Unlike a single `read()`, this keeps reading until the terminator
/// arrives, so a request line split across TCP segments (a client that
/// writes byte-by-byte, or a kernel that fragments the send) is
/// reassembled instead of mis-parsed. Reading stops at the terminator, at
/// `max` bytes, or at EOF, whichever comes first; the terminator is not
/// included in the returned line. Shared by this scrape endpoint and the
/// `streamhist-serve` front-end (which uses it to answer stray HTTP
/// clients on its binary port with a clean error).
///
/// # Errors
///
/// Propagates the underlying read error (including a read-timeout on a
/// stalled client).
pub fn read_line_bounded<R: Read>(stream: &mut R, max: usize) -> io::Result<String> {
    let mut line = Vec::with_capacity(64);
    let mut byte = [0u8; 1];
    while line.len() < max {
        match stream.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    Ok(String::from_utf8_lossy(&line).into_owned())
}

fn serve_one(
    mut stream: TcpStream,
    registry: &MetricsRegistry,
    options: &ExpositionOptions,
) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    // Read the full request line before parsing (it may arrive split
    // across TCP segments); the headers are not needed.
    let request = read_line_bounded(&mut stream, MAX_LINE)?;
    // Drain the (ignored) headers up to the blank line so the socket's
    // receive buffer is empty when we close — unread bytes at close make
    // the OS reset the connection instead of finishing it, which clients
    // see as ECONNRESET mid-response. Bounded: a header flood just stops
    // being drained (and then gets the reset it asked for).
    for _ in 0..64 {
        if read_line_bounded(&mut stream, MAX_LINE)?.is_empty() {
            break;
        }
    }
    let mut parts = request.split_whitespace();
    let method = parts.next().unwrap_or_default();
    let full_path = parts.next().unwrap_or_default();
    let mut path_parts = full_path.splitn(2, '?');
    let path = path_parts.next().unwrap_or_default();
    let query = path_parts.next().unwrap_or_default();

    let (status, body) = if method != "GET" {
        ("405 Method Not Allowed", "method not allowed\n".to_string())
    } else if path == "/" || path == "/metrics" {
        ("200 OK", registry.text_exposition())
    } else if path == "/events" {
        match &options.recorder {
            Some(recorder) => ("200 OK", recorder.render_text(events_after(query))),
            None => ("404 Not Found", "no flight recorder attached\n".to_string()),
        }
    } else if path == "/healthz" {
        match &options.health {
            Some(health) => {
                let status = health();
                if status.healthy {
                    ("200 OK", format!("ok {}\n", status.summary))
                } else {
                    ("503 Service Unavailable", format!("{}\n", status.summary))
                }
            }
            None => ("404 Not Found", "no health source attached\n".to_string()),
        }
    } else {
        ("404 Not Found", "not found; try /metrics\n".to_string())
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Parses the `after=N` query parameter of `/events`; a missing or
/// malformed value means "from the beginning". The returned sequence
/// number is *exclusive* — `after=7` starts the page at seq 8, matching
/// the "pass the last seq you saw" paging idiom.
fn events_after(query: &str) -> u64 {
    query
        .split('&')
        .find_map(|pair| pair.strip_prefix("after="))
        .and_then(|v| v.parse::<u64>().ok())
        .map_or(0, |n| n.saturating_add(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expo::parse_exposition;

    fn scrape(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        stream.write_all(request.as_bytes()).expect("send");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read");
        out
    }

    #[test]
    fn serves_a_valid_exposition_over_http() {
        let reg = Arc::new(MetricsRegistry::new());
        reg.counter("scraped_total", "Scrapes observed.").inc_by(7);
        let server = ExpositionServer::start("127.0.0.1:0", Arc::clone(&reg)).expect("bind");
        let response = scrape(
            server.local_addr(),
            "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n",
        );
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(
            response.contains("Content-Type: text/plain; version=0.0.4"),
            "{response}"
        );
        let body = response.split("\r\n\r\n").nth(1).expect("body");
        let samples = parse_exposition(body).expect("scraped body must validate");
        assert!(samples
            .iter()
            .any(|s| s.name == "scraped_total" && s.value == 7.0));
        server.shutdown();
    }

    #[test]
    fn unknown_path_is_404_and_non_get_is_405() {
        let reg = Arc::new(MetricsRegistry::new());
        let server = ExpositionServer::start("127.0.0.1:0", reg).expect("bind");
        let addr = server.local_addr();
        let resp = scrape(addr, "GET /nope HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 404"), "{resp}");
        let resp = scrape(addr, "POST /metrics HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 405"), "{resp}");
    }

    #[test]
    fn request_line_split_across_segments_still_parses() {
        // Regression: a single `read()` used to see only the first TCP
        // segment, mis-parsing "GET /metr" + "ics HTTP/1.1" into a 404.
        let reg = Arc::new(MetricsRegistry::new());
        reg.counter("split_total", "").inc_by(3);
        let server = ExpositionServer::start("127.0.0.1:0", Arc::clone(&reg)).expect("bind");
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        for chunk in ["GET /metr", "ics HT", "TP/1.1\r\n\r\n"] {
            stream.write_all(chunk.as_bytes()).expect("send");
            stream.flush().expect("flush");
            std::thread::sleep(Duration::from_millis(30));
        }
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read");
        assert!(out.starts_with("HTTP/1.1 200 OK\r\n"), "{out}");
        assert!(out.contains("split_total 3"), "{out}");
        server.shutdown();
    }

    #[test]
    fn line_reader_is_bounded_and_strips_crlf() {
        let mut input: &[u8] = b"hello world\r\nrest";
        assert_eq!(read_line_bounded(&mut input, 64).unwrap(), "hello world");
        let mut long: &[u8] = &[b'x'; 4096];
        let line = read_line_bounded(&mut long, 16).unwrap();
        assert_eq!(line.len(), 16, "bounded at max");
        let mut bare: &[u8] = b"no newline at all";
        assert_eq!(
            read_line_bounded(&mut bare, 64).unwrap(),
            "no newline at all"
        );
    }

    #[test]
    fn events_endpoint_serves_and_pages_the_recorder() {
        use crate::recorder::{EventKind, FlightRecorder};
        let reg = Arc::new(MetricsRegistry::new());
        let recorder = Arc::new(FlightRecorder::with_capacity(32));
        for shard in 0..5usize {
            recorder.record(EventKind::ShardDied { shard });
        }
        let server = ExpositionServer::start_with(
            "127.0.0.1:0",
            reg,
            ExpositionOptions {
                recorder: Some(Arc::clone(&recorder)),
                health: None,
            },
        )
        .expect("bind");
        let addr = server.local_addr();
        let all = scrape(addr, "GET /events HTTP/1.1\r\n\r\n");
        assert!(all.starts_with("HTTP/1.1 200 OK"), "{all}");
        assert!(all.contains("#0 "), "{all}");
        assert!(all.contains("shard_died shard=4"), "{all}");
        let paged = scrape(addr, "GET /events?after=2 HTTP/1.1\r\n\r\n");
        assert!(!paged.contains("#2 "), "after is exclusive: {paged}");
        assert!(paged.contains("#3 "), "{paged}");
        // No health source attached → /healthz is 404.
        let hz = scrape(addr, "GET /healthz HTTP/1.1\r\n\r\n");
        assert!(hz.starts_with("HTTP/1.1 404"), "{hz}");
        server.shutdown();
    }

    #[test]
    fn healthz_reports_200_then_503() {
        use std::sync::atomic::AtomicBool;
        let reg = Arc::new(MetricsRegistry::new());
        let sick = Arc::new(AtomicBool::new(false));
        let sick_view = Arc::clone(&sick);
        let server = ExpositionServer::start_with(
            "127.0.0.1:0",
            reg,
            ExpositionOptions {
                recorder: None,
                health: Some(Arc::new(move || {
                    if sick_view.load(Ordering::Relaxed) {
                        HealthStatus {
                            healthy: false,
                            summary: "shard0=Dead shard1=Live".to_string(),
                        }
                    } else {
                        HealthStatus {
                            healthy: true,
                            summary: "shard0=Live shard1=Live".to_string(),
                        }
                    }
                })),
            },
        )
        .expect("bind");
        let addr = server.local_addr();
        let ok = scrape(addr, "GET /healthz HTTP/1.1\r\n\r\n");
        assert!(ok.starts_with("HTTP/1.1 200 OK"), "{ok}");
        sick.store(true, Ordering::Relaxed);
        let bad = scrape(addr, "GET /healthz HTTP/1.1\r\n\r\n");
        assert!(bad.starts_with("HTTP/1.1 503"), "{bad}");
        assert!(bad.contains("shard0=Dead shard1=Live"), "{bad}");
        // No recorder attached → /events is 404.
        let ev = scrape(addr, "GET /events HTTP/1.1\r\n\r\n");
        assert!(ev.starts_with("HTTP/1.1 404"), "{ev}");
        server.shutdown();
    }

    #[test]
    fn reflects_updates_between_scrapes_and_shuts_down_cleanly() {
        let reg = Arc::new(MetricsRegistry::new());
        let counter = reg.counter("live_total", "");
        let server = ExpositionServer::start("127.0.0.1:0", Arc::clone(&reg)).expect("bind");
        let addr = server.local_addr();
        counter.inc();
        assert!(scrape(addr, "GET / HTTP/1.1\r\n\r\n").contains("live_total 1"));
        counter.inc_by(9);
        assert!(scrape(addr, "GET / HTTP/1.1\r\n\r\n").contains("live_total 10"));
        server.shutdown();
        assert!(
            TcpStream::connect(addr).is_err() || {
                // The OS may accept briefly after close on some platforms;
                // what matters is the thread exited, which shutdown() joined.
                true
            }
        );
    }
}
