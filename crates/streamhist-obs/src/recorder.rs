//! A bounded in-memory flight recorder: the fleet's black box.
//!
//! [`FlightRecorder`] is a fixed-capacity ring of typed, monotonically
//! sequenced [`Event`]s. Writers never block each other on a shared lock:
//! each event claims a unique sequence number with one atomic `fetch_add`,
//! then writes into the slot `seq % capacity` under that slot's own
//! mutex. Two writers contend only when they land on the *same* slot —
//! i.e. when the ring has wrapped a full capacity between them — and a
//! slower writer holding an older sequence number never clobbers a newer
//! event (the slot compares sequence numbers before overwriting). The
//! result is the classic flight-recorder contract:
//!
//! * every recorded event gets a unique, strictly increasing `seq`;
//! * at most `capacity` events are retained — the newest ones;
//! * [`events_from`](FlightRecorder::events_from) returns what is
//!   retained in sequence order, paged by sequence number.
//!
//! Timestamps are coarse (milliseconds since the recorder was created):
//! events are for reconstructing *what happened in what order*, and the
//! sequence number — not the clock — is the order witness. The recorder
//! also feeds a [`RateFamily`](crate::sliding::RateFamily), so the
//! events-per-second rate over sliding windows is available at O(1) words
//! per window (see [`crate::sliding`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

use crate::sliding::RateFamily;

/// Default ring capacity: enough to reconstruct a chaos sweep's worth of
/// supervisor transitions plus slow-query timelines without measurable
/// memory cost.
pub const DEFAULT_CAPACITY: usize = 1024;

/// One recorded event: a unique sequence number, a coarse timestamp
/// (milliseconds since the recorder's creation), and the typed payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Unique, strictly increasing per recorder; the order witness.
    pub seq: u64,
    /// Milliseconds since the recorder was created (coarse, monotonic).
    pub at_ms: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The typed event payloads a recorder understands — one variant per
/// noteworthy transition in the supervisor, durability, overload, and
/// serve layers.
///
/// Deliberately *exhaustive*: the serve layer carries these on the wire,
/// and a new variant must fail its codec's `match` at compile time rather
/// than silently fall through a wildcard and vanish from the timeline.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A supervisor probe found a shard's worker dead.
    ShardDied {
        /// The shard whose worker died.
        shard: usize,
    },
    /// A shard's worker was restarted from its newest checkpoint.
    ShardRestarted {
        /// The restarted shard.
        shard: usize,
        /// Records restored from the checkpoint (and WAL replay).
        restored_len: u64,
        /// Records lost since the last durable point.
        lost: u64,
    },
    /// A restart was deferred because the supervisor's token bucket was
    /// empty (restart-storm protection).
    RestartDeferred {
        /// The shard left dead for now.
        shard: usize,
    },
    /// A flapping shard crossed the failure threshold and was quarantined.
    ShardQuarantined {
        /// The quarantined shard.
        shard: usize,
    },
    /// A quarantined shard was given a probationary restart.
    ShardProbation {
        /// The shard on probation.
        shard: usize,
    },
    /// A recovering shard answered a probe and is Live again.
    ShardRecovered {
        /// The recovered shard.
        shard: usize,
    },
    /// The durability uploader persisted a checkpoint frame.
    CheckpointUploaded {
        /// The shard the frame belongs to.
        shard: usize,
        /// The frame's sequence number (records covered).
        upload_seq: u64,
        /// Encoded frame size in bytes.
        bytes: u64,
    },
    /// A store call failed and the uploader retried it.
    UploadRetried {
        /// The shard whose upload was retried.
        shard: usize,
        /// 1-based retry attempt number.
        attempt: u32,
    },
    /// Load was shed: a full shard queue dropped records
    /// (`shard: Some(_)`) or the serve accept pool shed a connection
    /// (`shard: None`).
    Overloaded {
        /// The overloaded shard, or `None` for the serve accept pool.
        shard: Option<usize>,
        /// Cumulative records (or connections) dropped at emission time.
        dropped: u64,
    },
    /// A served request exceeded the slow-query threshold; the full phase
    /// timeline is attached.
    SlowQuery {
        /// The request's verb name.
        verb: String,
        /// The request's trace id, if one was carried or assigned.
        trace: Option<u64>,
        /// Microseconds spent decoding the request frame.
        decode_us: u64,
        /// Microseconds spent answering (snapshot/gather + evaluation).
        answer_us: u64,
        /// Microseconds spent encoding and writing the reply.
        encode_us: u64,
        /// End-to-end microseconds for the request.
        total_us: u64,
    },
    /// A global snapshot was served from a partial fleet (degraded mode).
    SnapshotDegraded {
        /// Shards whose windows the snapshot represents.
        shards_included: usize,
        /// Total shards in the fleet.
        shards_total: usize,
    },
}

impl EventKind {
    /// A stable, short name for the event type (used by renderings and by
    /// the wire codec's tests).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::ShardDied { .. } => "shard_died",
            EventKind::ShardRestarted { .. } => "shard_restarted",
            EventKind::RestartDeferred { .. } => "restart_deferred",
            EventKind::ShardQuarantined { .. } => "shard_quarantined",
            EventKind::ShardProbation { .. } => "shard_probation",
            EventKind::ShardRecovered { .. } => "shard_recovered",
            EventKind::CheckpointUploaded { .. } => "checkpoint_uploaded",
            EventKind::UploadRetried { .. } => "upload_retried",
            EventKind::Overloaded { .. } => "overloaded",
            EventKind::SlowQuery { .. } => "slow_query",
            EventKind::SnapshotDegraded { .. } => "snapshot_degraded",
        }
    }
}

impl std::fmt::Display for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{} +{}ms {}", self.seq, self.at_ms, self.kind.name())?;
        match &self.kind {
            EventKind::ShardDied { shard }
            | EventKind::RestartDeferred { shard }
            | EventKind::ShardQuarantined { shard }
            | EventKind::ShardProbation { shard }
            | EventKind::ShardRecovered { shard } => write!(f, " shard={shard}"),
            EventKind::ShardRestarted {
                shard,
                restored_len,
                lost,
            } => write!(f, " shard={shard} restored={restored_len} lost={lost}"),
            EventKind::CheckpointUploaded {
                shard,
                upload_seq,
                bytes,
            } => write!(f, " shard={shard} seq={upload_seq} bytes={bytes}"),
            EventKind::UploadRetried { shard, attempt } => {
                write!(f, " shard={shard} attempt={attempt}")
            }
            EventKind::Overloaded { shard, dropped } => match shard {
                Some(s) => write!(f, " shard={s} dropped={dropped}"),
                None => write!(f, " pool=serve-accept dropped={dropped}"),
            },
            EventKind::SlowQuery {
                verb,
                trace,
                decode_us,
                answer_us,
                encode_us,
                total_us,
            } => {
                write!(f, " verb={verb}")?;
                if let Some(t) = trace {
                    write!(f, " trace={t}")?;
                }
                write!(
                    f,
                    " decode={decode_us}us answer={answer_us}us \
                     encode={encode_us}us total={total_us}us"
                )
            }
            EventKind::SnapshotDegraded {
                shards_included,
                shards_total,
            } => write!(f, " included={shards_included}/{shards_total}"),
        }
    }
}

/// The bounded event ring. See the [module docs](self).
#[derive(Debug)]
pub struct FlightRecorder {
    /// The next sequence number to hand out; also the count of events
    /// ever recorded.
    seq: AtomicU64,
    slots: Vec<Mutex<Option<Event>>>,
    epoch: Instant,
    rates: RateFamily,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder retaining the newest `capacity` events (clamped to at
    /// least 1).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            seq: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            epoch: Instant::now(),
            rates: RateFamily::standard(),
        }
    }

    /// The ring's capacity: the maximum number of events retained.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The number of events ever recorded (also the next `seq`). Events
    /// older than the newest `capacity()` have been overwritten.
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Milliseconds since this recorder was created — the clock every
    /// event's `at_ms` is relative to.
    #[must_use]
    pub fn now_ms(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// Records one event, returning its sequence number.
    ///
    /// Lock-free with respect to other writers except when two writers
    /// land on the same slot (the ring wrapped a full capacity between
    /// them); even then the slot lock is held only for the write, and an
    /// older event never overwrites a newer one.
    pub fn record(&self, kind: EventKind) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let at_ms = self.now_ms();
        self.rates.observe(at_ms);
        let idx = usize::try_from(seq % self.slots.len() as u64).expect("index < capacity");
        let mut slot = self.slots[idx]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        // A racing writer that wrapped past us may already have written a
        // *newer* event here; keep the newest.
        if slot.as_ref().is_none_or(|e| e.seq < seq) {
            *slot = Some(Event { seq, at_ms, kind });
        }
        seq
    }

    /// Retained events with `seq >= from`, in ascending sequence order,
    /// at most `max` of them. Page by passing the last returned event's
    /// `seq + 1` as the next `from`.
    #[must_use]
    pub fn events_from(&self, from: u64, max: usize) -> Vec<Event> {
        let mut out: Vec<Event> = self
            .slots
            .iter()
            .filter_map(|s| {
                s.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone()
                    .filter(|e| e.seq >= from)
            })
            .collect();
        out.sort_by_key(|e| e.seq);
        out.truncate(max);
        out
    }

    /// Every retained event, in sequence order.
    #[must_use]
    pub fn all_events(&self) -> Vec<Event> {
        self.events_from(0, self.slots.len())
    }

    /// Events-per-second over the standard sliding windows (1s / 10s /
    /// 60s), as `(window_seconds, rate)` pairs. See [`crate::sliding`]
    /// for the estimator's error bound.
    #[must_use]
    pub fn rates(&self) -> Vec<(u64, f64)> {
        self.rates.rates(self.now_ms())
    }

    /// Renders the retained tail (from `from`) as one event per line —
    /// the `/events` endpoint's body.
    #[must_use]
    pub fn render_text(&self, from: u64) -> String {
        let events = self.events_from(from, self.slots.len());
        let mut out = String::new();
        out.push_str(&format!(
            "# flight recorder: {} recorded, {} retained (capacity {})\n",
            self.recorded(),
            events.len(),
            self.capacity(),
        ));
        for (secs, rate) in self.rates() {
            out.push_str(&format!("# events_per_sec_{secs}s {rate:.3}\n"));
        }
        for e in &events {
            out.push_str(&format!("{e}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seqs_are_unique_and_dense_and_ring_is_bounded() {
        let rec = FlightRecorder::with_capacity(8);
        for i in 0..20usize {
            let seq = rec.record(EventKind::ShardDied { shard: i });
            assert_eq!(seq, i as u64, "seq is the claim order");
        }
        assert_eq!(rec.recorded(), 20);
        let events = rec.all_events();
        assert_eq!(events.len(), 8, "capacity bounds retention");
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(
            seqs,
            (12..20).collect::<Vec<u64>>(),
            "newest retained, ordered"
        );
    }

    #[test]
    fn paging_by_sequence_number() {
        let rec = FlightRecorder::with_capacity(16);
        for i in 0..10usize {
            rec.record(EventKind::ShardRecovered { shard: i });
        }
        let page1 = rec.events_from(0, 4);
        assert_eq!(page1.len(), 4);
        assert_eq!(page1[0].seq, 0);
        let next = page1.last().unwrap().seq + 1;
        let page2 = rec.events_from(next, 100);
        assert_eq!(page2.len(), 6);
        assert_eq!(page2[0].seq, 4);
        assert!(rec.events_from(10, 100).is_empty(), "past the end");
    }

    #[test]
    fn display_is_one_line_per_event() {
        let rec = FlightRecorder::with_capacity(4);
        rec.record(EventKind::SlowQuery {
            verb: "range_sum".into(),
            trace: Some(7),
            decode_us: 1,
            answer_us: 2,
            encode_us: 3,
            total_us: 6,
        });
        rec.record(EventKind::Overloaded {
            shard: None,
            dropped: 2,
        });
        let text = rec.render_text(0);
        assert!(text.contains("slow_query verb=range_sum trace=7"), "{text}");
        assert!(text.contains("pool=serve-accept dropped=2"), "{text}");
        assert!(text.contains("events_per_sec_1s"), "{text}");
    }

    #[test]
    fn concurrent_writers_never_lose_or_duplicate_seqs() {
        let rec = Arc::new(FlightRecorder::with_capacity(64));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let rec = Arc::clone(&rec);
                std::thread::spawn(move || {
                    for i in 0..250usize {
                        rec.record(EventKind::ShardDied {
                            shard: t * 1000 + i,
                        });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(rec.recorded(), 1000);
        let events = rec.all_events();
        assert_eq!(events.len(), 64);
        let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        let sorted = seqs.clone();
        seqs.dedup();
        assert_eq!(seqs.len(), 64, "no duplicated seqs");
        assert_eq!(seqs, sorted, "drain is seq-ordered");
        // Every retained seq is from the final `capacity` window modulo
        // slot races: a retained event is never older than
        // recorded - 2*capacity (a racing writer can at worst leave the
        // previous lap's event in its slot).
        assert!(seqs.iter().all(|&s| s >= 1000 - 128));
    }

    use std::sync::Arc;
}
