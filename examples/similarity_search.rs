//! Time-series similarity search (paper §5.2, third experiment): compare
//! V-optimal-histogram representations against Keogh et al.'s APCA as the
//! dimensionality reduction inside a GEMINI index, counting **false
//! positives** (candidates that survive lower-bound pruning but fail exact
//! verification) at an equal segment budget.
//!
//! The workload is built so that representation quality matters: all series
//! share a flat noisy base and differ mainly by plateaus at per-series,
//! non-dyadic positions. A plateau hidden inside a long segment contributes
//! only `~mass/len` to the lower bound instead of its true mass, so a
//! segmentation that fails to isolate plateaus produces loose bounds — and
//! false positives.
//!
//! Run with: `cargo run --release --example similarity_search`

#![allow(clippy::disallowed_macros)] // report binaries print by design
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use streamhist::{euclidean, ReprMethod, SeriesIndex, SubsequenceIndex};

/// Shared flat base with light noise + three per-series plateaus of
/// width 4-8 at arbitrary (non-dyadic) positions. Plateau boundaries are
/// what the two segmentations compete on: the exact/near-optimal V-optimal
/// boundaries isolate plateaus, the wavelet-seeded APCA boundaries snap to
/// the dyadic grid and leak plateau mass into neighbouring segments.
fn make_collection(count: usize, len: usize, seed: u64) -> Vec<Vec<f64>> {
    (0..count)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9e37_79b9));
            let mut s: Vec<f64> = (0..len).map(|_| 100.0 + rng.gen_range(-2.0..2.0)).collect();
            for _ in 0..3 {
                let w = rng.gen_range(4..9);
                let at = rng.gen_range(0..len - w);
                let h = rng.gen_range(40.0..90.0);
                for v in s.iter_mut().skip(at).take(w) {
                    *v += h;
                }
            }
            s
        })
        .collect()
}

fn mean_pairwise_distance(coll: &[Vec<f64>], samples: usize) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for i in 0..samples.min(coll.len()) {
        for j in (i + 1)..samples.min(coll.len()) {
            total += euclidean(&coll[i], &coll[j]);
            count += 1;
        }
    }
    total / count as f64
}

fn main() {
    let (count, len, m) = (300, 128, 8);
    let collection = make_collection(count, len, 31);
    let d_typ = mean_pairwise_distance(&collection, 40);
    println!(
        "whole-series matching: {count} series of length {len}, {m} segments each, \
         mean pairwise distance {d_typ:.0}\n"
    );

    // Queries: perturbed copies of indexed series.
    let queries: Vec<Vec<f64>> = (0..30)
        .map(|k| {
            let base = &collection[k * 7 % count];
            base.iter()
                .enumerate()
                .map(|(i, v)| v + ((i + k) % 3) as f64)
                .collect()
        })
        .collect();

    for frac in [0.4f64, 0.6] {
        let radius = frac * d_typ;
        println!(
            "radius = {:.0} ({}% of mean pairwise distance):",
            radius,
            frac * 100.0
        );
        println!(
            "  {:<26} {:>8} {:>12} {:>12} {:>9}",
            "representation", "answers", "candidates", "false pos.", "FP rate"
        );
        for (name, method) in [
            ("APCA (Keogh et al.)", ReprMethod::Apca),
            (
                "V-optimal (eps=0.1)",
                ReprMethod::VOptimalApprox { eps: 0.1 },
            ),
            ("V-optimal (exact DP)", ReprMethod::VOptimalExact),
        ] {
            let index = SeriesIndex::build(collection.clone(), m, method);
            let (mut answers, mut candidates, mut fps) = (0usize, 0usize, 0usize);
            for q in &queries {
                let (hits, stats) = index.range_query(q, radius);
                answers += hits.len();
                candidates += stats.candidates;
                fps += stats.false_positives;
            }
            println!(
                "  {:<26} {:>8} {:>12} {:>12} {:>8.1}%",
                name,
                answers,
                candidates,
                fps,
                100.0 * fps as f64 / candidates.max(1) as f64
            );
        }
        println!();
    }

    // Subsequence matching over one long stream.
    println!("subsequence matching: plant a pattern in a 16k-point stream");
    let mut rng = StdRng::seed_from_u64(99);
    let mut long: Vec<f64> = (0..16_384)
        .map(|t| {
            let phase = std::f64::consts::TAU * (t % 512) as f64 / 512.0;
            50.0 + 20.0 * phase.sin() + rng.gen_range(-1.0..1.0)
        })
        .collect();
    for _ in 0..200 {
        let at = rng.gen_range(0..long.len());
        long[at] += rng.gen_range(30.0..70.0);
    }
    // Plant a distinctive double plateau at offset 9000.
    for (i, v) in long.iter_mut().enumerate().skip(9_000).take(128) {
        *v = if (i - 9_000) < 64 { 200.0 } else { 140.0 };
    }
    let pattern = long[9_000..9_128].to_vec();
    for (name, method) in [
        ("APCA (Keogh et al.)", ReprMethod::Apca),
        (
            "V-optimal (eps=0.1)",
            ReprMethod::VOptimalApprox { eps: 0.1 },
        ),
    ] {
        let idx = SubsequenceIndex::build(&long, 128, 8, m, method);
        let (hits, stats) = idx.range_query(&pattern, 60.0);
        println!(
            "  {:<24} windows={} matches at offsets {:?}, candidates={}, false positives={}",
            name,
            idx.num_windows(),
            hits,
            stats.candidates,
            stats.false_positives
        );
        assert!(
            hits.contains(&9_000),
            "planted pattern must be found (no false dismissals)"
        );
    }
}
