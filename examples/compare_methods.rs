//! Side-by-side comparison of every sequence-approximation method in the
//! workspace on one window of a synthetic utilization trace: exact DP,
//! offline ε-approximation, agglomerative, fixed-window, wavelet synopsis
//! — plus the value-domain equi-depth histogram from a GK quantile
//! summary.
//!
//! Run with: `cargo run --release --example compare_methods`

#![allow(clippy::disallowed_macros)] // report binaries print by design
use std::time::Instant;
use streamhist::data::{utilization_trace, WorkloadGen};
use streamhist::{
    approx_histogram, evaluate_queries, optimal_histogram, AgglomerativeHistogram,
    EquiDepthHistogram, FixedWindowHistogram, GkSummary, QuantileSummary, SequenceSummary,
    WaveletSynopsis,
};

fn main() {
    let n = 4096;
    let (b, eps) = (16, 0.1);
    let data = utilization_trace(n, 1234);
    let queries = WorkloadGen::new(55, n).range_sums(1_000);

    println!("n = {n}, B = {b}, eps = {eps}, 1000 random range-sum queries\n");
    println!(
        "{:<26} {:>12} {:>12} {:>10} {:>12}",
        "method", "SSE", "mean |err|", "rel err", "build time"
    );

    let report = |name: &str, sse: f64, s: &dyn SequenceSummary, t: std::time::Duration| {
        let r = evaluate_queries(&data, s, &queries);
        println!(
            "{:<26} {:>12.4e} {:>12.1} {:>9.3}% {:>12.1?}",
            name,
            sse,
            r.mean_abs_error,
            100.0 * r.mean_rel_error,
            t
        );
    };

    // Exact optimal DP (the accuracy floor).
    let t = Instant::now();
    let h_opt = optimal_histogram(&data, b);
    report("optimal DP (JKM+98)", h_opt.sse(&data), &h_opt, t.elapsed());

    // Offline ε-approximate histogram (Problem 2).
    let t = Instant::now();
    let h_approx = approx_histogram(&data, b, eps);
    report(
        "offline eps-approx",
        h_approx.sse(&data),
        &h_approx,
        t.elapsed(),
    );

    // Agglomerative (streaming, whole sequence).
    let t = Instant::now();
    let agg = AgglomerativeHistogram::from_slice(&data, b, eps);
    let h_agg = agg.histogram();
    report(
        "agglomerative stream",
        h_agg.sse(&data),
        h_agg.as_ref(),
        t.elapsed(),
    );

    // Fixed-window (streaming; window == whole sequence here).
    let t = Instant::now();
    let mut fw = FixedWindowHistogram::new(n, b, eps);
    for &v in &data {
        fw.push(v);
    }
    let h_fw = fw.histogram();
    report(
        "fixed-window stream",
        h_fw.sse(&data),
        h_fw.as_ref(),
        t.elapsed(),
    );

    // Wavelet synopsis at equal budget.
    let t = Instant::now();
    let wav = WaveletSynopsis::top_b(&data, b);
    report("wavelet top-B (MVW)", wav.sse(&data), &wav, t.elapsed());

    // Equi-width baseline (distribution-oblivious boundaries).
    let t = Instant::now();
    let h_ew = streamhist::Histogram::equi_width(&data, b);
    report("equi-width", h_ew.sse(&data), &h_ew, t.elapsed());

    // Alternative error objectives (paper footnote 3): SAE-optimal with
    // median heights, and max-error-optimal with mid-range heights.
    let t = Instant::now();
    let h_sae = streamhist::optimal_histogram_sae(&data, b);
    report(
        "SAE-optimal (medians)",
        h_sae.sse(&data),
        &h_sae,
        t.elapsed(),
    );
    let t = Instant::now();
    let h_max = streamhist::max_error_histogram(&data, b);
    report("max-err-optimal", h_max.sse(&data), &h_max, t.elapsed());
    println!(
        "  (SAE-optimal: SAE {:.4e} vs {:.4e} for the SSE-optimal; \
         max-err-optimal: L-inf {:.1} vs {:.1})",
        streamhist::realized_sae(&h_sae, &data),
        streamhist::realized_sae(&h_opt, &data),
        streamhist::realized_max_error(&h_max, &data),
        streamhist::realized_max_error(&h_opt, &data)
    );

    // Value-domain equi-depth histogram (different query class: value
    // selectivity, not index ranges) — reported separately.
    let t = Instant::now();
    let mut gk = GkSummary::new(0.01);
    for &v in &data {
        gk.push(v);
    }
    let ed = EquiDepthHistogram::from_summary(&gk, b);
    let built = t.elapsed();
    let median = gk.quantile(0.5);
    println!(
        "\nvalue-domain (GK + equi-depth, {} tuples, built in {:.1?}):",
        gk.stored(),
        built
    );
    println!("  median value estimate: {median:.0}");
    let sel = ed.selectivity(0.0, median);
    println!("  selectivity of [0, median] = {:.3} (expected ~0.5)", sel);

    println!(
        "\nbucket boundaries (fixed-window): {:?}",
        h_fw.bucket_ends()
    );
}
