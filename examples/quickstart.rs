//! Quickstart: maintain a `(1+ε)`-approximate V-optimal histogram over a
//! sliding window of a synthetic utilization stream, and answer range-sum
//! queries against it.
//!
//! Run with: `cargo run --release --example quickstart`

#![allow(clippy::disallowed_macros)] // report binaries print by design
use streamhist::data::{utilization_trace, WorkloadGen};
use streamhist::{evaluate_queries, FixedWindowHistogram};

fn main() {
    // A 50k-point stand-in for the paper's AT&T utilization trace.
    let stream = utilization_trace(50_000, 42);

    // Sliding window of the last 1024 points, 16 buckets, SSE within 10%
    // of the optimal histogram of each window.
    let window = 1024;
    let (b, eps) = (16, 0.1);
    let mut fw = FixedWindowHistogram::new(window, b, eps);

    for &v in &stream {
        fw.push(v); // amortized O(1)
    }

    // Materialize the histogram of the final window (CreateList, paper §4.5).
    let (hist, stats) = fw.histogram_with_stats();
    println!("window = {window}, B = {b}, eps = {eps}");
    println!(
        "built histogram with {} buckets; interval queues: {:?}; {} HERROR evals",
        hist.num_buckets(),
        stats.queue_sizes,
        stats.herror_evals
    );

    // Answer a few queries from the synopsis and compare with the truth.
    let data = fw.window();
    println!(
        "\n{:<28} {:>14} {:>14} {:>9}",
        "query", "exact", "estimate", "rel.err"
    );
    let mut gen = WorkloadGen::new(7, window);
    for _ in 0..5 {
        let q = gen.range_sum();
        let exact = q.exact(&data);
        let est = q.estimate(hist.as_ref());
        println!(
            "{:<28} {:>14.1} {:>14.1} {:>8.2}%",
            format!("{q:?}"),
            exact,
            est,
            100.0 * (est - exact).abs() / exact.abs().max(1.0)
        );
    }

    // Aggregate accuracy over a 500-query workload (the paper's protocol).
    let workload = WorkloadGen::new(99, window).range_sums(500);
    let report = evaluate_queries(&data, hist.as_ref(), &workload);
    println!(
        "\n500 random range-sum queries: mean |err| = {:.1} ({:.2}% relative), max = {:.1}",
        report.mean_abs_error,
        100.0 * report.mean_rel_error,
        report.max_abs_error
    );
    println!(
        "space: {} buckets summarize {} points ({}x compression)",
        hist.num_buckets(),
        window,
        window / hist.num_buckets().max(1)
    );
}
