//! Approximate querying in a data warehouse (paper §5.2, second
//! experiment): build a histogram of a large stored fact column in **one
//! pass** with the agglomerative algorithm, and compare its accuracy and
//! construction time against the exact `O(n²B)` optimal histogram.
//!
//! "The resulting histograms are comparable in accuracy with those
//! resulting from the optimal histogram construction algorithm ... and the
//! savings in construction time are profound; these savings increase as
//! the size of the underlying data set increases."
//!
//! Run with: `cargo run --release --example warehouse_approx`

#![allow(clippy::disallowed_macros)] // report binaries print by design
use std::time::Instant;
use streamhist::data::{utilization_trace, WorkloadGen};
use streamhist::{evaluate_queries, optimal_histogram, AgglomerativeHistogram};

fn main() {
    let b = 32;
    let eps = 0.1;
    println!("B = {b}, eps = {eps}\n");
    println!(
        "{:>8} {:>12} {:>12} {:>10} {:>12} {:>12} {:>8}",
        "n", "agg SSE", "opt SSE", "SSE ratio", "agg time", "opt time", "speedup"
    );

    for n in [1_000usize, 2_000, 4_000, 8_000, 16_000] {
        // The warehouse fact column (e.g. daily service usage).
        let column = utilization_trace(n, 2026);

        // One-pass approximate construction.
        let t0 = Instant::now();
        let agg = AgglomerativeHistogram::from_slice(&column, b, eps);
        let h_agg = agg.histogram();
        let t_agg = t0.elapsed();

        // Exact optimal DP.
        let t1 = Instant::now();
        let h_opt = optimal_histogram(&column, b);
        let t_opt = t1.elapsed();

        let sse_agg = h_agg.sse(&column);
        let sse_opt = h_opt.sse(&column);

        println!(
            "{:>8} {:>12.4e} {:>12.4e} {:>10.4} {:>10.1?} {:>10.1?} {:>7.1}x",
            n,
            sse_agg,
            sse_opt,
            sse_agg / sse_opt.max(1e-12),
            t_agg,
            t_opt,
            t_opt.as_secs_f64() / t_agg.as_secs_f64().max(1e-12)
        );

        // Query-level accuracy on the largest size.
        if n == 16_000 {
            let queries = WorkloadGen::new(5, n).range_sums(1_000);
            let r_agg = evaluate_queries(&column, h_agg.as_ref(), &queries);
            let r_opt = evaluate_queries(&column, &h_opt, &queries);
            println!("\n1000 random range-sum queries at n = {n}:");
            println!(
                "  one-pass agglomerative: mean |err| = {:.1} ({:.3}% of mean answer)",
                r_agg.mean_abs_error,
                100.0 * r_agg.mean_abs_error / r_agg.mean_exact.abs().max(1.0)
            );
            println!(
                "  optimal DP:             mean |err| = {:.1} ({:.3}% of mean answer)",
                r_opt.mean_abs_error,
                100.0 * r_opt.mean_abs_error / r_opt.mean_exact.abs().max(1.0)
            );
        }
    }
}
