//! Change detection on a data stream — the mining direction the paper's
//! conclusion motivates ("The incremental nature of our algorithms makes
//! them applicable to mining problems in data streams").
//!
//! Two fixed-window histograms track a *reference* window (the stream
//! `lag` points ago) and the *current* window; an alarm fires when the
//! normalized L2 distance between their histograms jumps. Because the
//! histograms compress each window to `B` buckets, the distance costs
//! `O(B)` per check instead of `O(window)` — the synopsis, not the raw
//! data, is what gets compared (and could be shipped across the network
//! using the `codec` wire format).
//!
//! Run with: `cargo run --release --example change_detection`

#![allow(clippy::disallowed_macros)] // report binaries print by design
use streamhist::data::{Ar1, LevelShift, Mixture};
use streamhist::{codec, distance, FixedWindowHistogram};

fn main() {
    let window = 256;
    let lag = 512;
    let b = 12;
    let eps = 0.2;
    let check_every = 64;
    let threshold = 8.0; // alarm when distance > threshold * baseline

    // A stream with genuine regime changes: AR(1) chatter + rare large
    // level shifts (the events to detect).
    let stream: Vec<f64> = Mixture::new(vec![
        Box::new(Ar1::new(7, 0.8, 100.0, 4.0)),
        Box::new(LevelShift::new(8, 0.0003, 200.0)),
    ])
    .take(30_000)
    .collect();

    let mut current = FixedWindowHistogram::new(window, b, eps);
    let mut reference = FixedWindowHistogram::new(window, b, eps);
    let mut baseline = f64::NAN; // running EWMA of the distance
    let mut alarms: Vec<usize> = Vec::new();
    let mut shipped_bytes = 0usize;

    for (t, &v) in stream.iter().enumerate() {
        current.push(v);
        if t >= lag {
            reference.push(stream[t - lag]);
        }
        if t >= lag + window && t % check_every == 0 {
            let hc = current.histogram();
            let hr = reference.histogram();
            // In a distributed deployment the reference synopsis arrives
            // over the wire; account for its encoded size.
            let wire = codec::encode(&hr);
            shipped_bytes += wire.len();
            let hr = codec::decode(&wire).expect("self-produced encoding is valid");

            let d = distance::l2(&hc, &hr) / (window as f64).sqrt();
            if baseline.is_nan() {
                baseline = d;
            }
            if d > threshold * baseline.max(1.0) {
                alarms.push(t);
                println!("t={t:>6}: CHANGE detected, distance {d:>8.1} (baseline {baseline:>6.1})");
                baseline = d; // re-baseline after the alarm
            } else {
                baseline = 0.95 * baseline + 0.05 * d;
            }
        }
    }

    println!("\n{} alarms over {} points", alarms.len(), stream.len());
    println!(
        "synopsis traffic: {shipped_bytes} bytes total ({} bytes/check, vs {} for raw windows)",
        shipped_bytes / ((stream.len() - lag - window) / check_every).max(1),
        window * 8
    );
    assert!(
        !alarms.is_empty(),
        "the level-shift process produces detectable changes"
    );
}
