//! Network-monitoring scenario from the paper's introduction: "network
//! operators commonly pose queries, requesting the aggregate number of
//! bytes over network interfaces for time windows of interest."
//!
//! Simulates a bursty link-utilization stream; a fixed-window histogram
//! tracks the last 2048 samples and is periodically consulted for
//! (a) aggregate-bytes range queries and (b) burst detection via bucket
//! heights — while a from-scratch wavelet baseline answers the same
//! queries for comparison.
//!
//! Run with: `cargo run --release --example network_monitor`

#![allow(clippy::disallowed_macros)] // report binaries print by design
use streamhist::data::{BurstyOnOff, Diurnal, Mixture, WorkloadGen};
use streamhist::{evaluate_queries, FixedWindowHistogram, SlidingWindowWavelet};

fn main() {
    let window = 2048;
    let (b, eps) = (24, 0.1);
    let stream_len = 40_000;

    // Link utilization: diurnal load + heavy-tailed bursts, in bytes/sec.
    let gen = Mixture::new(vec![
        Box::new(Diurnal::new(11, 4.0e6, 2.0e6, 8192, 1.0e5)),
        Box::new(BurstyOnOff::new(13, 0.004, 0.08, 6.0e6, 1.4)),
    ]);
    let stream: Vec<f64> = gen.take(stream_len).map(|v| v.max(0.0).round()).collect();

    let mut fw = FixedWindowHistogram::new(window, b, eps);
    let mut wavelet = SlidingWindowWavelet::new(window, b);

    let mut checkpoints = 0usize;
    let mut hist_report = streamhist::AccuracyReport::empty();
    let mut wave_report = streamhist::AccuracyReport::empty();

    for (t, &v) in stream.iter().enumerate() {
        fw.push(v);
        wavelet.push(v);

        // Operator consults the monitor every 4096 samples.
        if t >= window && t % 4096 == 0 {
            checkpoints += 1;
            let truth = fw.window();
            let queries = WorkloadGen::new(t as u64, window).range_sums(200);

            let hist = fw.histogram();
            hist_report = hist_report.merge(&evaluate_queries(&truth, hist.as_ref(), &queries));

            let syn = wavelet.synopsis();
            wave_report = wave_report.merge(&evaluate_queries(&truth, &syn, &queries));

            // Burst detection: buckets whose height is far above the
            // window median height.
            let mut heights: Vec<f64> = hist.buckets().iter().map(|b| b.height).collect();
            heights.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let median = heights[heights.len() / 2];
            let bursts: Vec<String> = hist
                .buckets()
                .iter()
                .filter(|bk| bk.height > 2.0 * median.max(1.0))
                .map(|bk| format!("[{}..{}] @ {:.2e} B/s", bk.start, bk.end, bk.height))
                .collect();
            if !bursts.is_empty() {
                println!("t={t}: burst buckets: {}", bursts.join(", "));
            }
        }
    }

    println!("\n--- aggregate accuracy over {checkpoints} checkpoints x 200 queries ---");
    println!(
        "{:<22} {:>16} {:>12} {:>12}",
        "method", "mean |err| (bytes)", "rel err", "max |err|"
    );
    for (name, r) in [
        ("fixed-window hist", &hist_report),
        ("wavelet (scratch)", &wave_report),
    ] {
        println!(
            "{:<22} {:>16.3e} {:>11.3}% {:>12.3e}",
            name,
            r.mean_abs_error,
            100.0 * r.mean_rel_error,
            r.max_abs_error
        );
    }
    println!(
        "\nhistogram mean error is {:.1}x smaller than the wavelet baseline",
        wave_report.mean_abs_error / hist_report.mean_abs_error.max(1e-9)
    );
}
