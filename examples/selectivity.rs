//! Selectivity estimation for a query optimizer — the `[IP95]` setting the
//! paper's V-optimal objective comes from: a fact-table column's value
//! distribution is summarized by a small histogram, and the optimizer asks
//! "how many rows match `WHERE v BETWEEN a AND b`?" before choosing a plan.
//!
//! Run with: `cargo run --release --example selectivity`

#![allow(clippy::disallowed_macros)] // report binaries print by design
use streamhist::data::{collect, Zipfian};
use streamhist::freq::{evaluate_selectivity, FrequencyVector, ValueHistogram};

fn main() {
    // A skewed column: order quantities following a Zipf law over 1..=256.
    let domain = 256usize;
    let rows: Vec<i64> = collect(Zipfian::new(42, domain, 1.05), 500_000)
        .into_iter()
        .map(|v| v as i64)
        .collect();
    let freq = FrequencyVector::from_values(rows.iter().copied(), 1, domain as i64);
    println!(
        "column: {} rows over values 1..={domain} (zipf 1.05); hottest value count = {}",
        freq.total(),
        freq.count_of(1)
    );

    let b = 24;
    let policies: Vec<(&str, ValueHistogram)> = vec![
        ("v-optimal", ValueHistogram::v_optimal(&freq, b)),
        ("max-diff", ValueHistogram::max_diff(&freq, b)),
        ("equi-depth", ValueHistogram::equi_depth(&freq, b)),
        ("equi-width", ValueHistogram::equi_width(&freq, b)),
    ];

    // A few optimizer-style predicates.
    println!("\npredicate estimates at B = {b}:");
    println!(
        "{:<24} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "predicate", "exact", "v-opt", "max-diff", "equi-depth", "equi-width"
    );
    for (a, z) in [(1i64, 1i64), (1, 4), (10, 50), (100, 256), (200, 256)] {
        let exact = freq.range_count(a, z);
        print!("{:<24} {:>12}", format!("BETWEEN {a} AND {z}"), exact);
        for (_, h) in &policies {
            print!(" {:>12.0}", h.estimate_range_count(a, z));
        }
        println!();
    }

    // Aggregate accuracy over a reproducible random workload.
    let predicates: Vec<(i64, i64)> = (0..2000)
        .map(|k| {
            let a = 1 + (k * 131) as i64 % domain as i64;
            let span = 1 + (k * 17) as i64 % 64;
            (a, (a + span).min(domain as i64))
        })
        .collect();
    println!("\n2000 random predicates, B = {b}:");
    for (name, h) in &policies {
        let r = evaluate_selectivity(&freq, h, &predicates);
        println!(
            "  {:<12} mean |err| = {:>9.1} rows ({:>6.2}% rel), max = {:>9.1}",
            name,
            r.mean_abs_error,
            100.0 * r.mean_rel_error,
            r.max_abs_error
        );
    }
    println!(
        "\n(each histogram stores {b} buckets = {} numbers, vs {} distinct counts)",
        2 * b,
        domain
    );
}
