//! A small command-line monitor: reads newline-delimited numbers from
//! stdin (or generates a synthetic trace with `--demo N`), maintains a
//! fixed-window histogram, and periodically prints the synopsis — the
//! "online querying" deployment shape from the paper's introduction.
//!
//! Usage:
//!   cargo run --release --example stream_cli -- [--window N] [--buckets B]
//!       [--eps E] [--report-every K] [--demo N] [--checkpoint PATH]
//!   printf '1\n2\n3\n' | cargo run --release --example stream_cli -- --window 64
//!
//! Each report line shows the window mean, the histogram's bucket
//! boundaries and heights, and the synopsis wire size.
//!
//! With `--checkpoint PATH` the monitor is durable across runs: if PATH
//! exists the window is restored from it at startup (its CRC-checked
//! frame rejects corruption; the configuration flags are then taken from
//! the checkpoint, not the command line), and the final state is saved
//! back to PATH on exit.

use std::io::BufRead;
use streamhist::data::utilization_trace;
use streamhist::{codec, Checkpoint, FixedWindowHistogram};

#[derive(Debug)]
struct Args {
    window: usize,
    buckets: usize,
    eps: f64,
    report_every: usize,
    demo: Option<usize>,
    checkpoint: Option<std::path::PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        window: 1024,
        buckets: 12,
        eps: 0.1,
        report_every: 4096,
        demo: None,
        checkpoint: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--window" => args.window = value("--window")?.parse().map_err(|e| format!("{e}"))?,
            "--buckets" => {
                args.buckets = value("--buckets")?.parse().map_err(|e| format!("{e}"))?
            }
            "--eps" => args.eps = value("--eps")?.parse().map_err(|e| format!("{e}"))?,
            "--report-every" => {
                args.report_every = value("--report-every")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--demo" => args.demo = Some(value("--demo")?.parse().map_err(|e| format!("{e}"))?),
            "--checkpoint" => args.checkpoint = Some(value("--checkpoint")?.into()),
            "--help" | "-h" => {
                return Err("usage: stream_cli [--window N] [--buckets B] [--eps E] \
                            [--report-every K] [--demo N] [--checkpoint PATH]"
                    .into())
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.window == 0 || args.buckets == 0 || args.eps <= 0.0 || args.report_every == 0 {
        return Err("window, buckets, eps and report-every must be positive".into());
    }
    Ok(args)
}

fn report(t: usize, fw: &FixedWindowHistogram) {
    let (h, stats) = fw.histogram_with_stats();
    if h.domain_len() == 0 {
        println!("t={t}: window empty");
        return;
    }
    let mean = h.range_sum(0, h.domain_len() - 1) / h.domain_len() as f64;
    let wire = codec::encode(&h).len();
    let buckets: Vec<String> = h
        .buckets()
        .iter()
        .map(|b| format!("[{}..{}]={:.1}", b.start, b.end, b.height))
        .collect();
    println!(
        "t={t} n={} mean={mean:.1} sse~{:.3e} wire={wire}B  {}",
        h.domain_len(),
        stats.herror,
        buckets.join(" ")
    );
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    let mut fw = match &args.checkpoint {
        Some(path) if path.exists() => {
            let bytes = match std::fs::read(path) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("cannot read checkpoint {}: {e}", path.display());
                    std::process::exit(2);
                }
            };
            match FixedWindowHistogram::restore(&bytes) {
                Ok(fw) => {
                    eprintln!(
                        "restored {} records from {}",
                        fw.total_pushed(),
                        path.display()
                    );
                    fw
                }
                Err(e) => {
                    eprintln!("corrupt checkpoint {}: {e}", path.display());
                    std::process::exit(2);
                }
            }
        }
        _ => FixedWindowHistogram::new(args.window, args.buckets, args.eps),
    };
    let mut t = 0usize;

    if let Some(n) = args.demo {
        for v in utilization_trace(n, 7) {
            fw.push(v);
            t += 1;
            if t.is_multiple_of(args.report_every) {
                report(t, &fw);
            }
        }
    } else {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let line = match line {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("read error: {e}");
                    break;
                }
            };
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            match trimmed.parse::<f64>() {
                Ok(v) if v.is_finite() => {
                    fw.push(v);
                    t += 1;
                    if t.is_multiple_of(args.report_every) {
                        report(t, &fw);
                    }
                }
                _ => eprintln!("skipping non-numeric line: {trimmed:?}"),
            }
        }
    }
    println!("--- final ---");
    report(t, &fw);
    if let Some(path) = &args.checkpoint {
        let frame = fw.encode_checkpoint();
        match std::fs::write(path, &frame) {
            Ok(()) => eprintln!("checkpointed {}B to {}", frame.len(), path.display()),
            Err(e) => {
                eprintln!("cannot write checkpoint {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}
