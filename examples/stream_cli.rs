//! A small command-line monitor: reads newline-delimited numbers from
//! stdin (or generates a synthetic trace with `--demo N`), maintains a
//! fixed-window histogram, and periodically prints the synopsis — the
//! "online querying" deployment shape from the paper's introduction.
//!
//! Usage:
//!   cargo run --release --example stream_cli -- [--window N] [--buckets B]
//!       [--eps E] [--report-every K] [--demo N] [--checkpoint PATH]
//!       [--metrics-addr ADDR] [--serve ADDR] [--shards N]
//!   printf '1\n2\n3\n' | cargo run --release --example stream_cli -- --window 64
//!
//! Each report line shows the window mean, the histogram's bucket
//! boundaries and heights, and the synopsis wire size.
//!
//! With `--checkpoint PATH` the monitor is durable across runs: PATH is a
//! `DirStore` checkpoint-store directory. At startup the window is
//! restored from the newest CRC-checked frame in the store (the
//! configuration flags are then taken from the checkpoint, not the
//! command line); on exit the final state is saved back via temp-file +
//! rename, so a crash mid-save never leaves a torn checkpoint. A legacy
//! single-frame *file* at PATH (from an older version) is still restored
//! and is migrated to the store layout on the next save.
//!
//! With `--metrics-addr ADDR` (e.g. `127.0.0.1:9184`; port 0 picks an
//! ephemeral port) the monitor serves a Prometheus-style scrape endpoint
//! on a background thread: ingest counters, plus the kernel diagnostics
//! (queue sizes, HERROR evals, search probes, arena occupancy) published
//! as gauges at every report. The same endpoint serves the flight
//! recorder's event timeline on `/events` (`?after=N` pages by sequence)
//! and a supervisor-aware liveness probe on `/healthz` (200 only when
//! every shard is Live). Built with `--features obs`, a fleet-scoped
//! kernel phase tracer is attached too, adding push/build latency
//! summaries:
//!
//!   cargo run --release --features obs --example stream_cli -- \
//!       --demo 100000 --metrics-addr 127.0.0.1:9184
//!   curl http://127.0.0.1:9184/metrics
//!
//! With `--serve ADDR` the monitor additionally ingests into a sharded
//! fleet (`--shards N`, default 2) and serves the framed binary query
//! protocol on ADDR — range/point queries from the fleet-global snapshot,
//! quantile/selectivity from serve-side GK/MRL sketches, plus admin
//! verbs. After the input is drained the process keeps serving until
//! killed. The reference client is the `query` subcommand:
//!
//!   cargo run --release --example stream_cli -- --demo 100000 \
//!       --serve 127.0.0.1:9185
//!   cargo run --release --example stream_cli -- query \
//!       --addr 127.0.0.1:9185 range-sum 0 63
//!   cargo run --release --example stream_cli -- query \
//!       --addr 127.0.0.1:9185 quantile gk 0.99
//!
//! The `trace` subcommand runs any query verb with a trace id carried in
//! the wire frames (the server echoes it on success and error replies
//! alike), and `events` drains the server's flight recorder — shard
//! deaths and restarts, checkpoint uploads, overload sheds, slow
//! queries — over the admin protocol:
//!
//!   cargo run --release --example stream_cli -- trace \
//!       --addr 127.0.0.1:9185 range-sum 0 63
//!   cargo run --release --example stream_cli -- events \
//!       --addr 127.0.0.1:9185 --from 0

#![allow(clippy::disallowed_macros)] // report binaries print by design
use std::io::BufRead;
use std::sync::{Arc, Mutex};
use streamhist::data::utilization_trace;
#[cfg(feature = "obs")]
use streamhist::obs::KernelTracer;
use streamhist::obs::{
    publish_kernel_stats, Counter, ExpositionOptions, ExpositionServer, FlightRecorder,
    HealthStatus, MetricsRegistry,
};
use streamhist::serve::{QuantileMethod, QueryServer, Request, ServeClient, ServeState};
use streamhist::{
    codec, Checkpoint, CheckpointStore, Coverage, DirStore, FixedWindowHistogram, FleetHandle,
    ObjectKind, ShardState, ShardedFixedWindow, SnapshotPolicy, Supervisor, SupervisorHandle,
    SupervisorOptions,
};

/// Shared slot the `/healthz` closure reads: the supervisor starts after
/// the metrics endpoint, so the handle arrives late.
type SupervisorSlot = Arc<Mutex<Option<SupervisorHandle>>>;

/// The scrape endpoint plus the handles the ingest loop ticks.
struct Telemetry {
    registry: Arc<MetricsRegistry>,
    server: ExpositionServer,
    records: Counter,
    skipped: Counter,
}

impl Telemetry {
    fn start(
        addr: &str,
        registry: Arc<MetricsRegistry>,
        recorder: Arc<FlightRecorder>,
        supervisor: SupervisorSlot,
    ) -> std::io::Result<Self> {
        let records = registry.counter(
            "streamhist_cli_records_total",
            "Finite records ingested into the window",
        );
        let skipped = registry.counter(
            "streamhist_cli_skipped_total",
            "Input lines skipped as non-numeric or non-finite",
        );
        // `/healthz`: 200 only when every supervised shard is Live. With
        // no supervisor attached there is nothing to contradict liveness —
        // the process answering is the health signal.
        let health = Arc::new(move || match supervisor.lock().unwrap().as_ref() {
            Some(handle) => {
                let shards = handle.health();
                HealthStatus {
                    healthy: shards.iter().all(|h| h.state == ShardState::Live),
                    summary: shards
                        .iter()
                        .map(|h| format!("shard{}={}", h.shard, h.state))
                        .collect::<Vec<_>>()
                        .join(" "),
                }
            }
            None => HealthStatus {
                healthy: true,
                summary: "unsupervised".to_owned(),
            },
        });
        let server = ExpositionServer::start_with(
            addr,
            Arc::clone(&registry),
            ExpositionOptions {
                recorder: Some(recorder),
                health: Some(health),
            },
        )?;
        Ok(Self {
            registry,
            server,
            records,
            skipped,
        })
    }
}

#[derive(Debug)]
struct Args {
    window: usize,
    buckets: usize,
    eps: f64,
    report_every: usize,
    demo: Option<usize>,
    checkpoint: Option<std::path::PathBuf>,
    metrics_addr: Option<String>,
    serve: Option<String>,
    shards: usize,
    supervise: bool,
    min_coverage: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        window: 1024,
        buckets: 12,
        eps: 0.1,
        report_every: 4096,
        demo: None,
        checkpoint: None,
        metrics_addr: None,
        serve: None,
        shards: 2,
        supervise: false,
        min_coverage: 0.5,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--window" => args.window = value("--window")?.parse().map_err(|e| format!("{e}"))?,
            "--buckets" => {
                args.buckets = value("--buckets")?.parse().map_err(|e| format!("{e}"))?
            }
            "--eps" => args.eps = value("--eps")?.parse().map_err(|e| format!("{e}"))?,
            "--report-every" => {
                args.report_every = value("--report-every")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--demo" => args.demo = Some(value("--demo")?.parse().map_err(|e| format!("{e}"))?),
            "--checkpoint" => args.checkpoint = Some(value("--checkpoint")?.into()),
            "--metrics-addr" => args.metrics_addr = Some(value("--metrics-addr")?),
            "--serve" => args.serve = Some(value("--serve")?),
            "--shards" => args.shards = value("--shards")?.parse().map_err(|e| format!("{e}"))?,
            "--supervise" => args.supervise = true,
            "--min-coverage" => {
                args.min_coverage = value("--min-coverage")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--help" | "-h" => {
                return Err("usage: stream_cli [--window N] [--buckets B] [--eps E] \
                            [--report-every K] [--demo N] [--checkpoint PATH] \
                            [--metrics-addr ADDR] [--serve ADDR] [--shards N] \
                            [--supervise] [--min-coverage F]\n\
                            \x20      stream_cli query --addr ADDR VERB ARGS..."
                    .into())
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.window == 0 || args.buckets == 0 || args.eps <= 0.0 || args.report_every == 0 {
        return Err("window, buckets, eps and report-every must be positive".into());
    }
    if args.shards == 0 {
        return Err("shards must be positive".into());
    }
    if !(0.0..=1.0).contains(&args.min_coverage) {
        return Err("min-coverage must be in [0, 1]".into());
    }
    Ok(args)
}

const QUERY_USAGE: &str = "usage: stream_cli query --addr HOST:PORT VERB [ARGS]\n\
    verbs:\n\
    \x20 range-sum START END     sum over the inclusive index range\n\
    \x20 range-avg START END     average over the inclusive index range\n\
    \x20 point IDX               value at one index\n\
    \x20 range-count START END   positions in the inclusive index range\n\
    \x20 quantile gk|mrl PHI     phi-quantile of the ingested values\n\
    \x20 selectivity LO HI       fraction of values v with LO < v <= HI\n\
    \x20 shard-stats SHARD       one shard's counters\n\
    \x20 respawn-shard SHARD     respawn one shard's worker\n\
    \x20 checkpoint-all          checkpoint the fleet server-side\n\
    \x20 wal-status              the fleet's durability (WAL) status\n\
    \x20 health                  per-shard supervisor state\n\
    a degraded answer (some shards down, server in degraded mode) is\n\
    annotated with its coverage report\n\
    `stream_cli trace [--id N] --addr HOST:PORT VERB [ARGS]` runs the\n\
    same verbs with a trace id on the wire and prints the echoed id;\n\
    `stream_cli events --addr HOST:PORT [--from N]` dumps the server's\n\
    flight recorder (shard deaths, restarts, slow queries, ...)";

/// Renders a scalar answer, annotating it with the coverage report when
/// the server answered in degraded mode over a partial fleet.
fn scalar_line((value, coverage): (f64, Coverage)) -> String {
    if coverage.is_complete() {
        format!("{value}")
    } else {
        format!("{value}  [degraded: {coverage}]")
    }
}

/// The `query` subcommand: the wire protocol's reference client. With
/// `trace` set (the `trace` subcommand), the id rides the request frame
/// and the server's echo is printed after the answer.
fn run_query(argv: &[String], trace: Option<u64>) -> i32 {
    let mut addr = None;
    let mut rest = Vec::new();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => match it.next() {
                Some(v) => addr = Some(v.clone()),
                None => {
                    eprintln!("--addr needs a value");
                    return 2;
                }
            },
            "--help" | "-h" => {
                eprintln!("{QUERY_USAGE}");
                return 2;
            }
            _ => rest.push(a.clone()),
        }
    }
    let Some(addr) = addr else {
        eprintln!("{QUERY_USAGE}");
        return 2;
    };
    let parse_idx = |s: &String| s.parse::<usize>().map_err(|e| format!("{s:?}: {e}"));
    let parse_f64 = |s: &String| s.parse::<f64>().map_err(|e| format!("{s:?}: {e}"));
    let mut client = match ServeClient::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            return 1;
        }
    };
    client.set_trace(trace);
    let outcome: Result<Result<String, streamhist::serve::ClientError>, String> =
        match rest.iter().map(String::as_str).collect::<Vec<_>>()[..] {
            ["range-sum", _, _] => parse_idx(&rest[1]).and_then(|s| {
                parse_idx(&rest[2]).map(|e| {
                    client
                        .call_scalar(&Request::RangeSum { start: s, end: e })
                        .map(scalar_line)
                })
            }),
            ["range-avg", _, _] => parse_idx(&rest[1]).and_then(|s| {
                parse_idx(&rest[2]).map(|e| {
                    client
                        .call_scalar(&Request::RangeAvg { start: s, end: e })
                        .map(scalar_line)
                })
            }),
            ["point", _] => parse_idx(&rest[1])
                .map(|idx| client.call_scalar(&Request::Point { idx }).map(scalar_line)),
            ["range-count", _, _] => parse_idx(&rest[1]).and_then(|s| {
                parse_idx(&rest[2]).map(|e| {
                    client
                        .call_scalar(&Request::RangeCount { start: s, end: e })
                        .map(scalar_line)
                })
            }),
            ["quantile", method, _] => {
                let method = match method {
                    "gk" => Ok(QuantileMethod::Gk),
                    "mrl" => Ok(QuantileMethod::Mrl),
                    other => Err(format!("unknown quantile method {other:?} (gk or mrl)")),
                };
                method.and_then(|m| {
                    parse_f64(&rest[2]).map(|phi| {
                        client
                            .call_scalar(&Request::Quantile { method: m, phi })
                            .map(scalar_line)
                    })
                })
            }
            ["selectivity", _, _] => parse_f64(&rest[1]).and_then(|lo| {
                parse_f64(&rest[2]).map(|hi| {
                    client
                        .call_scalar(&Request::Selectivity { lo, hi })
                        .map(scalar_line)
                })
            }),
            ["shard-stats", _] => parse_idx(&rest[1]).map(|s| {
                client.shard_stats(s).map(|(shards, m)| {
                    format!(
                        "shard {s}/{shards}: pushes={} rejected={} dropped={} snapshots={} \
                         respawns={} checkpoints={} restores={} queue_depth={}",
                        m.pushes_accepted,
                        m.values_rejected,
                        m.records_dropped,
                        m.snapshots_served,
                        m.respawns,
                        m.checkpoints_taken,
                        m.restores,
                        m.queue_depth
                    )
                })
            }),
            ["respawn-shard", _] => parse_idx(&rest[1]).map(|s| {
                client.respawn_shard(s).map(|(restored, lost)| {
                    format!("respawned: restored_len={restored} lost_since_checkpoint={lost}")
                })
            }),
            ["checkpoint-all"] => Ok(client
                .checkpoint_all()
                .map(|bytes| format!("checkpointed {bytes}B server-side"))),
            ["wal-status"] => Ok(client.wal_status().map(|s| {
                if s.enabled {
                    format!(
                        "wal: sync={} interval={} segments={} ({}B) frames={} ({}B) \
                         ingested={}B written={}B amplification={:.3} retries={} \
                         failures={} dropped={} queue_depth={}",
                        s.wal_sync,
                        s.checkpoint_interval,
                        s.segments_written,
                        s.segment_bytes,
                        s.frames_written,
                        s.frame_bytes,
                        s.bytes_ingested,
                        s.bytes_written,
                        s.amplification,
                        s.retries,
                        s.failures,
                        s.segments_dropped,
                        s.queue_depth
                    )
                } else {
                    "wal: disabled (fleet built without durability)".to_owned()
                }
            })),
            ["health"] => Ok(client.health().map(|(supervised, shards)| {
                let mut line = format!(
                    "fleet health ({}):",
                    if supervised {
                        "supervised"
                    } else {
                        "synthesized from pings"
                    }
                );
                for h in shards {
                    line.push_str(&format!(
                        "\n  shard {}: {} failures={} restarts={}",
                        h.shard, h.state, h.consecutive_failures, h.restarts
                    ));
                }
                line
            })),
            _ => {
                eprintln!("{QUERY_USAGE}");
                return 2;
            }
        };
    let code = match outcome {
        Err(usage) => {
            eprintln!("{usage}");
            2
        }
        Ok(Err(e)) => {
            eprintln!("{e}");
            1
        }
        Ok(Ok(line)) => {
            println!("{line}");
            0
        }
    };
    if let Some(sent) = trace {
        // Error frames echo the trace too, so report it on any outcome
        // that reached the server.
        match client.last_trace() {
            Some(echoed) if echoed == sent => println!("trace: {sent:#x} (echoed)"),
            Some(echoed) => println!("trace: sent {sent:#x}, server echoed {echoed:#x}"),
            None => println!("trace: sent {sent:#x}, no echo (request never reached a reply)"),
        }
    }
    code
}

/// The `trace` subcommand: `query` with a trace id on the wire. Without
/// `--id N` a process-unique id is derived from the clock and PID.
fn run_trace(argv: &[String]) -> i32 {
    let mut id = None;
    let mut rest = Vec::new();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        if a == "--id" {
            match it.next().map(|v| {
                let digits = v.strip_prefix("0x").unwrap_or(v);
                if v.starts_with("0x") {
                    u64::from_str_radix(digits, 16)
                } else {
                    digits.parse()
                }
            }) {
                Some(Ok(v)) => id = Some(v),
                Some(Err(e)) => {
                    eprintln!("--id: {e}");
                    return 2;
                }
                None => {
                    eprintln!("--id needs a value");
                    return 2;
                }
            }
        } else {
            rest.push(a.clone());
        }
    }
    let id = id.unwrap_or_else(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| {
                u64::try_from(d.as_nanos() & u128::from(u64::MAX)).unwrap_or(0)
            });
        nanos ^ (u64::from(std::process::id()) << 32)
    });
    run_query(&rest, Some(id))
}

/// The `events` subcommand: drain the server's flight recorder over the
/// `events` admin verb and print one line per retained event.
fn run_events(argv: &[String]) -> i32 {
    let mut addr = None;
    let mut from = 0u64;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => match it.next() {
                Some(v) => addr = Some(v.clone()),
                None => {
                    eprintln!("--addr needs a value");
                    return 2;
                }
            },
            "--from" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(v)) => from = v,
                Some(Err(e)) => {
                    eprintln!("--from: {e}");
                    return 2;
                }
                None => {
                    eprintln!("--from needs a value");
                    return 2;
                }
            },
            other => {
                eprintln!("events: unknown argument {other}\n{QUERY_USAGE}");
                return 2;
            }
        }
    }
    let Some(addr) = addr else {
        eprintln!("{QUERY_USAGE}");
        return 2;
    };
    let mut client = match ServeClient::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            return 1;
        }
    };
    match client.events_all(from) {
        Ok((recorded, events)) => {
            println!(
                "{recorded} events recorded, {} retained from #{from}",
                events.len()
            );
            for e in &events {
                println!("{e}");
            }
            0
        }
        Err(e) => {
            eprintln!("{e}");
            1
        }
    }
}

/// The CLI's single window lives in shard 0 of its checkpoint store:
/// restore the newest frame, or `None` for an empty store.
fn load_newest_frame(store: &DirStore) -> Result<Option<FixedWindowHistogram>, String> {
    let ids = store.list(0).map_err(|e| e.to_string())?;
    let Some(newest) = ids
        .iter()
        .filter(|id| id.kind == ObjectKind::Frame)
        .max_by_key(|id| id.seq)
    else {
        return Ok(None);
    };
    let frame = store.get(newest).map_err(|e| e.to_string())?;
    FixedWindowHistogram::restore(&frame)
        .map(Some)
        .map_err(|e| e.to_string())
}

/// Exit-time save: one frame into a [`DirStore`] at `path` (temp file +
/// rename, so a crash mid-save never leaves a torn checkpoint), then a
/// truncate so only the newest frame remains. A legacy single-frame file
/// at `path` is migrated: removed and replaced by the store directory.
fn save_checkpoint(path: &std::path::Path, fw: &FixedWindowHistogram) -> Result<u64, String> {
    if path.is_file() {
        std::fs::remove_file(path).map_err(|e| format!("removing legacy file: {e}"))?;
        eprintln!(
            "migrating legacy checkpoint file {} to a store directory",
            path.display()
        );
    }
    let store = DirStore::open(path).map_err(|e| e.to_string())?;
    let frame = fw.encode_checkpoint();
    let seq = fw.total_pushed();
    store.put_frame(0, seq, &frame).map_err(|e| e.to_string())?;
    store.truncate(0, seq).map_err(|e| e.to_string())?;
    Ok(frame.len() as u64)
}

fn report(t: usize, fw: &FixedWindowHistogram, telemetry: Option<&Telemetry>) {
    let (h, stats) = fw.histogram_with_stats();
    if let Some(tel) = telemetry {
        publish_kernel_stats(&tel.registry, &[("source", "stream_cli")], &stats);
    }
    if h.domain_len() == 0 {
        println!("t={t}: window empty");
        return;
    }
    let mean = h.range_sum(0, h.domain_len() - 1) / h.domain_len() as f64;
    let wire = codec::encode(&h).len();
    let buckets: Vec<String> = h
        .buckets()
        .iter()
        .map(|b| format!("[{}..{}]={:.1}", b.start, b.end, b.height))
        .collect();
    println!(
        "t={t} n={} mean={mean:.1} sse~{:.3e} wire={wire}B  {}",
        h.domain_len(),
        stats.herror,
        buckets.join(" ")
    );
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("query") => std::process::exit(run_query(&argv[1..], None)),
        Some("trace") => std::process::exit(run_trace(&argv[1..])),
        Some("events") => std::process::exit(run_events(&argv[1..])),
        _ => {}
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    // One registry and one flight recorder for everything this process
    // runs — the CLI window, the fleet, the serve layer, the supervisor —
    // created before any of them so each can be handed the same handles.
    let registry = Arc::new(MetricsRegistry::new());
    let recorder = Arc::new(FlightRecorder::default());
    let sup_slot: SupervisorSlot = Arc::new(Mutex::new(None));
    #[cfg(feature = "obs")]
    let tracer = Arc::new(KernelTracer::new(&registry));
    // The CLI's own window pushes on this thread; give its kernel hooks
    // the tracer thread-locally (fleet workers get it via the builder).
    #[cfg(feature = "obs")]
    streamhist::obs::set_thread_kernel_tracer(Some(Arc::clone(&tracer)));

    let telemetry = match &args.metrics_addr {
        Some(addr) => {
            match Telemetry::start(
                addr,
                Arc::clone(&registry),
                Arc::clone(&recorder),
                Arc::clone(&sup_slot),
            ) {
                Ok(tel) => {
                    eprintln!(
                        "serving metrics on http://{0}/metrics \
                         (events on /events, health on /healthz)",
                        tel.server.local_addr()
                    );
                    Some(tel)
                }
                Err(e) => {
                    eprintln!("cannot bind metrics endpoint {addr}: {e}");
                    std::process::exit(2);
                }
            }
        }
        None => None,
    };

    // With --serve, mirror every ingested value into a sharded fleet and
    // put the query surface on the wire.
    let serving = match &args.serve {
        Some(addr) => {
            let builder =
                ShardedFixedWindow::builder(args.shards, args.window, args.buckets, args.eps)
                    .fleet_label("cli")
                    .registry(Arc::clone(&registry))
                    .recorder(Arc::clone(&recorder));
            #[cfg(feature = "obs")]
            let builder = builder.kernel_tracer(Arc::clone(&tracer));
            let fleet = match builder.build() {
                Ok(sw) => FleetHandle::new(sw),
                Err(e) => {
                    eprintln!("cannot build fleet: {e}");
                    std::process::exit(2);
                }
            };
            let mut state = ServeState::new(fleet.clone(), Arc::clone(&registry));
            // --supervise: a background supervisor heals dead shards and
            // the serve policy degrades instead of failing, answering
            // from the live subset with an honest coverage report.
            let supervisor = if args.supervise {
                match Supervisor::start_with_metrics(
                    fleet,
                    SupervisorOptions::default(),
                    &registry,
                    "cli",
                ) {
                    Ok(sup) => {
                        state = state
                            .with_policy(SnapshotPolicy::Degraded {
                                min_coverage: args.min_coverage,
                            })
                            .with_supervisor(sup.handle());
                        *sup_slot.lock().unwrap() = Some(sup.handle());
                        eprintln!(
                            "supervisor running (degraded serving above {:.0}% coverage)",
                            args.min_coverage * 100.0
                        );
                        Some(sup)
                    }
                    Err(e) => {
                        eprintln!("cannot start supervisor: {e}");
                        std::process::exit(2);
                    }
                }
            } else {
                None
            };
            match QueryServer::start(addr.as_str(), state.clone(), 4) {
                Ok(server) => {
                    eprintln!("serving queries on {}", server.local_addr());
                    Some((server, state, supervisor))
                }
                Err(e) => {
                    eprintln!("cannot bind query endpoint {addr}: {e}");
                    std::process::exit(2);
                }
            }
        }
        None => None,
    };

    let mut fw = match &args.checkpoint {
        Some(path) if path.is_file() => {
            // Legacy layout: PATH is a bare single-frame file from an older
            // run. Restore it; the exit-time save migrates PATH to a
            // DirStore directory.
            let bytes = match std::fs::read(path) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("cannot read checkpoint {}: {e}", path.display());
                    std::process::exit(2);
                }
            };
            match FixedWindowHistogram::restore(&bytes) {
                Ok(fw) => {
                    eprintln!(
                        "restored {} records from legacy checkpoint file {}",
                        fw.total_pushed(),
                        path.display()
                    );
                    fw
                }
                Err(e) => {
                    eprintln!("corrupt checkpoint {}: {e}", path.display());
                    std::process::exit(2);
                }
            }
        }
        Some(path) if path.is_dir() => {
            // Store layout: PATH is a DirStore root; the window lives in
            // shard 0's newest frame.
            let store = match DirStore::open(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot open checkpoint store {}: {e}", path.display());
                    std::process::exit(2);
                }
            };
            match load_newest_frame(&store) {
                Ok(Some(fw)) => {
                    eprintln!(
                        "restored {} records from checkpoint store {}",
                        fw.total_pushed(),
                        path.display()
                    );
                    fw
                }
                Ok(None) => FixedWindowHistogram::new(args.window, args.buckets, args.eps),
                Err(e) => {
                    eprintln!("corrupt checkpoint store {}: {e}", path.display());
                    std::process::exit(2);
                }
            }
        }
        _ => FixedWindowHistogram::new(args.window, args.buckets, args.eps),
    };
    let mut t = 0usize;

    if let Some(n) = args.demo {
        for v in utilization_trace(n, 7) {
            fw.push(v);
            if let Some((_, state, _)) = &serving {
                if let Err(e) = state.ingest(t as u64, v) {
                    eprintln!("serve ingest error: {e}");
                }
            }
            if let Some(tel) = &telemetry {
                tel.records.inc();
            }
            t += 1;
            if t.is_multiple_of(args.report_every) {
                report(t, &fw, telemetry.as_ref());
            }
        }
    } else {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let line = match line {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("read error: {e}");
                    break;
                }
            };
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            match trimmed.parse::<f64>() {
                Ok(v) if v.is_finite() => {
                    fw.push(v);
                    if let Some((_, state, _)) = &serving {
                        if let Err(e) = state.ingest(t as u64, v) {
                            eprintln!("serve ingest error: {e}");
                        }
                    }
                    if let Some(tel) = &telemetry {
                        tel.records.inc();
                    }
                    t += 1;
                    if t.is_multiple_of(args.report_every) {
                        report(t, &fw, telemetry.as_ref());
                    }
                }
                _ => {
                    if let Some(tel) = &telemetry {
                        tel.skipped.inc();
                    }
                    eprintln!("skipping non-numeric line: {trimmed:?}");
                }
            }
        }
    }
    println!("--- final ---");
    report(t, &fw, telemetry.as_ref());
    if let Some(path) = &args.checkpoint {
        match save_checkpoint(path, &fw) {
            Ok(bytes) => eprintln!(
                "checkpointed {bytes}B to store {} (atomic rename)",
                path.display()
            ),
            Err(e) => {
                eprintln!("cannot write checkpoint {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    if let Some((server, _state, _supervisor)) = serving {
        // Input is drained, but the query surface stays up: this is the
        // "start a demo server, query it from another terminal" shape.
        eprintln!(
            "input drained; still serving queries on {} (Ctrl-C to exit)",
            server.local_addr()
        );
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }
    if let Some(tel) = telemetry {
        tel.server.shutdown();
    }
}
