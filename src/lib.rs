//! # streamhist
//!
//! A production-quality Rust implementation of **streaming V-optimal
//! histograms** — a reproduction of *Sudipto Guha & Nick Koudas,
//! "Approximating a Data Stream for Querying and Estimation: Algorithms and
//! Performance Evaluation", ICDE 2002* — together with every substrate and
//! baseline the paper's evaluation depends on.
//!
//! ## The problem
//!
//! A histogram `H_B` approximates a sequence of values by `B` buckets, each
//! collapsing a contiguous index range to its mean, minimizing the
//! sum-squared-error. On a *data stream* the sequence is unbounded and read
//! once; the paper contributes one-pass `(1+ε)`-approximate constructions
//! for two models:
//!
//! * **agglomerative** — summarize everything seen so far
//!   ([`AgglomerativeHistogram`]);
//! * **fixed window** — summarize the latest `n` points
//!   ([`FixedWindowHistogram`]), the paper's headline algorithm, with
//!   amortized `O(1)` pushes and `O((B³/ε²) log³ n)` histogram
//!   materializations (Theorem 1).
//!
//! ## Quick start
//!
//! ```
//! use streamhist::{FixedWindowHistogram, SequenceSummary, StreamSummary};
//!
//! // Approximate the last 128 points with 8 buckets, within 10% of the
//! // optimal histogram's SSE.
//! let mut fw = FixedWindowHistogram::builder(128, 8, 0.1).build()?;
//! let slab: Vec<f64> = (0..1000).map(|t| (t % 50) as f64).collect();
//! fw.push_batch(&slab); // or fw.push(v) per point — bit-identical
//! let hist = fw.histogram(); // cached Arc<Histogram> until the next push
//! let estimate = hist.estimate_range_sum(10, 90);
//! let exact: f64 = fw.window()[10..=90].iter().sum();
//! assert!((estimate - exact).abs() / exact < 0.5);
//! # Ok::<(), streamhist::StreamhistError>(())
//! ```
//!
//! ## Crate map
//!
//! | Re-export | Source crate | Role |
//! |---|---|---|
//! | [`Histogram`], [`Bucket`], [`Query`], [`PrefixSums`] | `streamhist-core` | representation, queries, evaluation |
//! | [`FixedWindowHistogram`], [`AgglomerativeHistogram`], [`approx_histogram`] | `streamhist-stream` | the paper's algorithms |
//! | [`optimal_histogram`], [`optimal_sse`] | `streamhist-optimal` | exact `O(n²B)` DP (Jagadish et al.) |
//! | [`WaveletSynopsis`], [`SlidingWindowWavelet`] | `streamhist-wavelet` | the paper's wavelet baseline (MVW) |
//! | [`GkSummary`], [`MrlSummary`], [`EquiDepthHistogram`] | `streamhist-quantile` | §2 quantile substrates |
//! | [`SeriesIndex`], [`apca()`], [`lower_bound_dist`] | `streamhist-similarity` | §5.2 similarity search (APCA comparator) |
//! | [`data`] | `streamhist-data` | synthetic traces and query workloads |
//! | [`obs`] | `streamhist-obs` | metrics registry, latency quantiles, Prometheus-style exposition |
//! | [`serve`] | `streamhist-serve` | framed TCP query front-end over a live sharded fleet |
//!
//! See `DESIGN.md` for the paper-to-module map and `EXPERIMENTS.md` for the
//! reproduced evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use streamhist_core::{
    evaluate_queries, max_abs_error, sum_abs_error, sum_squared_error, AccuracyReport,
    BatchOutcome, Bucket, Checkpoint, CheckpointStore, DirStore, ExactSummary, FailingStore,
    GrowableWindowSums, Histogram, HistogramError, MemStore, MergeableSummary, ObjectId,
    ObjectKind, PrefixProvider, PrefixSums, Query, SequenceSummary, SlidingPrefixSums, StoreError,
    StreamSummary, StreamhistError, WalSegment, WindowSums,
};

/// Histogram-to-histogram distances (L1/L2/L∞ over the expanded sequences)
/// for change detection on streams.
pub mod distance {
    pub use streamhist_core::distance::{l1, l2, l2_sq, linf};
}

/// Compact binary wire format for shipping histograms between processes.
pub mod codec {
    pub use streamhist_core::codec::{decode, encode, DecodeError};
}

pub use streamhist_optimal::{
    brute_force_optimal, herror_table, max_error_dp, max_error_histogram, optimal_histogram,
    optimal_histogram_sae, optimal_sse, realized_max_error, realized_sae, RangeMinMax,
    RollingMedian,
};
pub use streamhist_quantile::{
    EquiDepthHistogram, GkSummary, MrlSummary, QuantileSummary, StreamingEquiDepth,
};
pub use streamhist_similarity::{
    apca, euclidean, lower_bound_dist, PiecewiseConstant, ReprMethod, SearchStats, Segment,
    SeriesIndex, SubsequenceIndex,
};
pub use streamhist_stream::{
    approx_histogram, merge_histograms, AgglomerativeBuilder, AgglomerativeHistogram, Coverage,
    DurabilityOptions, FixedWindowBuilder, FixedWindowHistogram, FleetHandle, KernelStats,
    MergeMetrics, NaiveSlidingWindow, NaiveSlidingWindowBuilder, OverloadPolicy, RecoveryReport,
    ShardError, ShardHealth, ShardMetrics, ShardState, ShardedFixedWindow,
    ShardedFixedWindowBuilder, ShardedOptions, SnapshotPolicy, Supervisor, SupervisorEvent,
    SupervisorHandle, SupervisorMetrics, SupervisorOptions, TimeWindowBuilder, TimeWindowHistogram,
    WalStatus,
};
pub use streamhist_wavelet::{DynamicWavelet, SlidingWindowWavelet, WaveletSynopsis};

/// Self-hosted telemetry: the lock-free metrics registry, GK-backed
/// latency summaries, and the Prometheus-style exposition surface
/// (`streamhist-obs`), plus this workspace's publication helpers
/// (`streamhist-stream::telemetry`).
///
/// The registry is always available; the span-style kernel/shard phase
/// tracing hooks additionally need the `obs` cargo feature (off by
/// default, compiles to no-ops when disabled).
pub mod obs {
    pub use streamhist_obs::{
        global, parse_exposition, Counter, Event, EventKind, ExpositionOptions, ExpositionServer,
        FamilySnapshot, FlightRecorder, FloatGauge, Gauge, HealthStatus, LatencyRecorder,
        LatencySnapshot, LatencySpan, MetricKind, MetricsRegistry, ParsedSample, RateFamily,
        SampleValue, SeriesSnapshot, SlidingSum, DEFAULT_CAPACITY,
    };
    pub use streamhist_stream::telemetry::publish_kernel_stats;
    #[allow(deprecated)]
    #[cfg(feature = "obs")]
    pub use streamhist_stream::telemetry::{install_kernel_tracer, kernel_tracer};
    #[cfg(feature = "obs")]
    pub use streamhist_stream::telemetry::{set_thread_kernel_tracer, KernelTracer};
}

/// The query path on the wire: a framed TCP front-end over a live
/// sharded fleet (`streamhist-serve`). Serves range/point queries from
/// the fleet-global snapshot and quantile/selectivity queries from
/// serve-side GK/MRL sketches; malformed input earns a structured error
/// frame, never a panic or a dropped connection.
pub mod serve {
    pub use streamhist_serve::{
        decode_event, encode_event, ClientError, ErrorCode, Packet, QuantileMethod, QueryServer,
        Request, Response, RetryBudget, ServeClient, ServeState, ServerOptions, WireError,
        EVENTS_PAGE_MAX, MAX_FRAME, MIN_FRAME,
    };
}

/// Value-domain frequency histograms for selectivity estimation (the
/// `[IP95]` query-optimization setting the paper builds on).
pub mod freq {
    pub use streamhist_freq::{
        evaluate_selectivity, max_diff_ends, FrequencyVector, SelectivityReport, ValueHistogram,
    };
}

/// Synthetic stream generators and query workload generators (the
/// substitution for the paper's proprietary AT&T traces; see `DESIGN.md`).
pub mod data {
    pub use streamhist_data::{
        collect, integerize, utilization_trace, Ar1, BurstyOnOff, Diurnal, LevelShift, Mixture,
        RandomWalk, SpikeTrain, UniformNoise, WorkloadGen, Zipfian,
    };
}
