//! Offline vendored stand-in for the parts of `proptest` this workspace
//! uses: the [`proptest!`] macro, [`Strategy`] with `prop_map` /
//! `prop_flat_map` / `boxed`, integer-range and collection strategies,
//! [`sample::select`], [`Just`], and the `prop_assert*` macros.
//!
//! Compared to the real proptest, this stub samples each case from a
//! deterministic per-case RNG and does **no shrinking**: a failing case
//! panics with the assertion message (plus whatever values the test
//! interpolates into it). That is enough for the workspace's property
//! tests, which all use explicit case counts and deterministic seeds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration (subset of the real `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// The RNG handed to strategies while generating one case.
#[derive(Debug)]
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// Deterministic runner for the `case`-th iteration of a property.
    #[must_use]
    pub fn deterministic(case: u64) -> Self {
        // Mix the case index so consecutive cases get unrelated streams.
        Self {
            rng: StdRng::seed_from_u64(
                0x5EED_0066_7E57_2B2B ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ),
        }
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A generator of values of type `Self::Value` (no shrinking).
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn sample(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds each generated value into `f` to obtain a dependent strategy,
    /// then samples that.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.sample(runner))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn sample(&self, runner: &mut TestRunner) -> T::Value {
        (self.f)(self.inner.sample(runner)).sample(runner)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

trait DynStrategy<T> {
    fn sample_dyn(&self, runner: &mut TestRunner) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, runner: &mut TestRunner) -> S::Value {
        self.sample(runner)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, runner: &mut TestRunner) -> T {
        self.0.sample_dyn(runner)
    }
}

/// A strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )+};
}

impl_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, runner: &mut TestRunner) -> f64 {
        runner.rng().gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident)+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(runner),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A B);
impl_tuple_strategy!(A B C);
impl_tuple_strategy!(A B C D);
impl_tuple_strategy!(A B C D E);

/// Size specifications accepted by the collection strategies.
pub trait SizeRange {
    /// Draws a concrete size.
    fn sample_size(&self, runner: &mut TestRunner) -> usize;
}

impl SizeRange for usize {
    fn sample_size(&self, _runner: &mut TestRunner) -> usize {
        *self
    }
}

impl SizeRange for std::ops::Range<usize> {
    fn sample_size(&self, runner: &mut TestRunner) -> usize {
        if self.start >= self.end {
            self.start
        } else {
            runner.rng().gen_range(self.clone())
        }
    }
}

impl SizeRange for std::ops::RangeInclusive<usize> {
    fn sample_size(&self, runner: &mut TestRunner) -> usize {
        runner.rng().gen_range(self.clone())
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRunner};
    use std::collections::BTreeSet;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Debug)]
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn sample(&self, runner: &mut TestRunner) -> Self::Value {
            let n = self.size.sample_size(runner);
            (0..n).map(|_| self.element.sample(runner)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with target size drawn from
    /// `size`; duplicates are retried a bounded number of times, so the
    /// produced set may be smaller than the target when the element domain
    /// is narrow (mirrors real proptest behavior well enough for tests).
    pub fn btree_set<S, Z>(element: S, size: Z) -> BTreeSetStrategy<S, Z>
    where
        S: Strategy,
        S::Value: Ord,
        Z: SizeRange,
    {
        BTreeSetStrategy { element, size }
    }

    /// See [`btree_set`].
    #[derive(Debug)]
    pub struct BTreeSetStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S, Z> Strategy for BTreeSetStrategy<S, Z>
    where
        S: Strategy,
        S::Value: Ord,
        Z: SizeRange,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, runner: &mut TestRunner) -> Self::Value {
            let target = self.size.sample_size(runner);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 10 + 16 {
                set.insert(self.element.sample(runner));
                attempts += 1;
            }
            set
        }
    }
}

/// Sampling strategies (subset of `proptest::sample`).
pub mod sample {
    use super::{Rng, Strategy, TestRunner};

    /// Uniformly selects one element of `options` per case.
    ///
    /// # Panics
    ///
    /// Panics when sampled if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select { options }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, runner: &mut TestRunner) -> T {
            assert!(!self.options.is_empty(), "select from empty options");
            let i = runner.rng().gen_range(0..self.options.len());
            self.options[i].clone()
        }
    }
}

/// Everything a property-test file needs, including the crate root as
/// `prop` (mirroring the real proptest prelude).
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, BoxedStrategy, Just, ProptestConfig,
        Strategy, TestRunner,
    };
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ...)`
/// expands to a normal `#[test]` running `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])+
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut runner = $crate::TestRunner::deterministic(u64::from(case));
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut runner);)+
                    $body
                }
            }
        )+
    };
    (
        $(
            $(#[$meta:meta])+
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )+
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])+
                fn $name($($pat in $strat),+) $body
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_case() {
        let s = prop::collection::vec(0..100i64, 1..20);
        let a = Strategy::sample(&s, &mut TestRunner::deterministic(3));
        let b = Strategy::sample(&s, &mut TestRunner::deterministic(3));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_in_bounds(v in prop::collection::vec(-5..5i64, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|x| (-5..5).contains(x)));
        }

        #[test]
        fn tuple_and_map_compose(
            (a, b) in (0usize..10, 0usize..10).prop_map(|(x, y)| (x, x + y)),
        ) {
            prop_assert!(b >= a);
        }

        #[test]
        fn flat_map_dependent_sampling(
            (n, i) in (1usize..50).prop_flat_map(|n| (Just(n), 0..n)),
        ) {
            prop_assert!(i < n);
        }
    }
}
