//! Offline vendored stand-in for the parts of the `rand` crate this
//! workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`] and [`Rng::gen_range`] over integer and float ranges.
//!
//! The build environment has no access to a cargo registry, so the real
//! `rand` cannot be fetched; every experiment in the workspace only needs a
//! *deterministic, seedable, decent-quality* generator, not the exact
//! `StdRng` stream. The core is xoshiro256++ seeded via SplitMix64 — the
//! same construction the `rand` ecosystem uses for seeding — so sequences
//! are reproducible across runs and platforms (but differ from upstream
//! `StdRng`, which is ChaCha12).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a small seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its "standard" distribution
    /// (`[0, 1)` for floats, full range for integers).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait SampleStandard {
    /// Draws one value from the standard distribution for `Self`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`]. The generic impls over
/// [`SampleUniform`] mirror real rand's structure so that `T` is inferred
/// from the range's element type.
pub trait SampleRange<T> {
    /// Draws one value uniformly from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a uniform sampler over `[lo, hi)` / `[lo, hi]`.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Uniform u64 in `[0, n)` by widening multiply (Lemire reduction without
/// the rejection step; the bias is < 2⁻⁶⁴·n and irrelevant for synthetic
/// trace generation).
fn below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((u128::from(rng.next_u64()) * u128::from(n)) >> 64) as u64
}

macro_rules! impl_int_uniform {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + below(rng, span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + below(rng, span) as i128) as $t
            }
        }
    )+};
}

impl_int_uniform!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let v = lo + f64::sample_standard(rng) * (hi - lo);
        // Guard against FP rounding landing exactly on `hi`.
        if v >= hi {
            lo
        } else {
            v
        }
    }

    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let v = lo + f32::sample_standard(rng) * (hi - lo);
        if v >= hi {
            lo
        } else {
            v
        }
    }

    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f32::sample_standard(rng) * (hi - lo)
    }
}

/// Named RNGs (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator: xoshiro256++ (Blackman & Vigna),
    /// state initialized by SplitMix64 — **not** the upstream ChaCha12
    /// `StdRng`, but an equally reproducible stand-in.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Convenience non-seedable generator (subset of `rand::thread_rng`):
/// deterministic here, seeded from a fixed constant.
#[must_use]
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::seed_from_u64(0x5EED_CAFE_F00D_D00D)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = rng.gen_range(-50..=-40);
            assert!((-50..=-40).contains(&y));
            let f: f64 = rng.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut acc = 0.0;
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            acc += u;
        }
        // Mean of 1000 uniforms should be near 0.5.
        assert!((acc / 1000.0 - 0.5).abs() < 0.05);
    }
}
