//! Offline vendored stand-in for the parts of `criterion` this workspace
//! uses: [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! The build environment has no cargo registry access, so the real
//! criterion (with its plotting/statistics stack) cannot be fetched. This
//! stub runs each benchmark with a short warm-up followed by timed
//! iterations and prints a one-line summary (median ns/iter plus
//! throughput when configured). It is intentionally simple: the workspace
//! benches are about *relative* comparisons and scaling shapes, which a
//! median over a fixed iteration budget captures fine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// A bench harness's job is to print its report; exempt it from the
// workspace-wide stdout ban (clippy.toml `disallowed-macros`).
#![allow(clippy::disallowed_macros)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 30 }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.sample_size, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 30,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(5);
        self
    }

    /// Declares how much work one iteration performs, enabling
    /// elements/second reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: impl Display, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finishes the group (no-op; reports are printed per benchmark).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        Self {
            repr: format!("{name}/{param}"),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(param: impl Display) -> Self {
        Self {
            repr: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.repr)
    }
}

/// Work performed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timer handle passed to the benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters: usize,
}

impl Bencher {
    /// Times `f` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: a few untimed runs to populate caches/branch predictors.
        for _ in 0..3.min(self.iters) {
            black_box(f());
        }
        self.samples.clear();
        self.samples.reserve(self.iters);
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        samples: Vec::new(),
        iters: sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("bench {id:<50} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let ns = median.as_nanos();
    match throughput {
        Some(Throughput::Elements(n)) if median.as_secs_f64() > 0.0 => {
            let rate = n as f64 / median.as_secs_f64();
            println!("bench {id:<50} median {ns:>12} ns/iter  {rate:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) if median.as_secs_f64() > 0.0 => {
            let rate = n as f64 / median.as_secs_f64() / (1 << 20) as f64;
            println!("bench {id:<50} median {ns:>12} ns/iter  {rate:>10.1} MiB/s");
        }
        _ => println!("bench {id:<50} median {ns:>12} ns/iter"),
    }
}

/// Declares a group-runner function invoking each benchmark function with
/// a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub");
        g.sample_size(5);
        g.throughput(Throughput::Elements(100));
        g.bench_function(BenchmarkId::from_parameter(1), |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        g.bench_with_input(BenchmarkId::new("with_input", 2), &2u64, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
    }

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_expands() {
        benches();
    }
}
