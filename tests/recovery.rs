//! Durability acceptance tests: checkpoint round-trips for every summary
//! type, corruption rejection, and a crash-consistency fuzz over the
//! sharded serving layer.
//!
//! Three contracts are pinned here:
//!
//! 1. **Bit-identity** — restoring a checkpoint yields a summary whose
//!    state re-encodes to the exact frame it came from, and that stays
//!    byte-for-byte in lockstep with the never-crashed original as both
//!    keep ingesting.
//! 2. **Corruption safety** — every truncation and every single-bit flip
//!    of a frame is rejected with `StreamhistError::CorruptCheckpoint`;
//!    nothing panics, nothing decodes to garbage.
//! 3. **Conservation** — across random crashes and respawns, every
//!    accepted record is either in the final summary or accounted for in
//!    a `RecoveryReport::lost_since_checkpoint`; nothing silently
//!    vanishes.
//!
//! On failure, the offending frame is written to
//! `target/recovery-artifacts/` so CI can upload it for offline replay.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use streamhist::freq::FrequencyVector;
use streamhist::obs::{EventKind, FlightRecorder};
use streamhist::{
    approx_histogram, AgglomerativeHistogram, Checkpoint, CheckpointStore, DurabilityOptions,
    DynamicWavelet, FailingStore, FixedWindowHistogram, FleetHandle, GkSummary, Histogram,
    MemStore, MergeableSummary, MrlSummary, ObjectKind, ShardState, ShardedFixedWindow,
    SlidingWindowWavelet, SnapshotPolicy, StoreError, StreamSummary, StreamhistError,
    StreamingEquiDepth, Supervisor, SupervisorEvent, SupervisorOptions, TimeWindowHistogram,
    WalSegment,
};

/// Directory failing frames are dumped to (uploaded by CI on failure).
fn artifact_dir() -> PathBuf {
    let dir = PathBuf::from("target").join("recovery-artifacts");
    std::fs::create_dir_all(&dir).expect("create artifact dir");
    dir
}

fn dump_artifact(name: &str, bytes: &[u8]) -> PathBuf {
    let path = artifact_dir().join(format!("{name}.bin"));
    std::fs::write(&path, bytes).expect("write artifact");
    path
}

/// Round-trips `live` through its checkpoint frame and pins bit-identity:
/// the restored summary re-encodes to the same bytes, and after both
/// instances ingest the same continuation they still encode identically.
fn check_golden<T: Checkpoint>(name: &str, mut live: T, push_more: impl Fn(&mut T)) {
    let frame = live.encode_checkpoint();
    let mut restored = match T::restore(&frame) {
        Ok(r) => r,
        Err(e) => {
            let p = dump_artifact(name, &frame);
            panic!(
                "{name}: rejected its own frame ({e}); frame saved to {}",
                p.display()
            );
        }
    };
    let reencoded = restored.encode_checkpoint();
    if reencoded != frame {
        let p = dump_artifact(&format!("{name}-original"), &frame);
        let q = dump_artifact(&format!("{name}-reencoded"), &reencoded);
        panic!(
            "{name}: restored state re-encodes differently; frames saved to {} and {}",
            p.display(),
            q.display()
        );
    }
    push_more(&mut live);
    push_more(&mut restored);
    let a = live.encode_checkpoint();
    let b = restored.encode_checkpoint();
    if a != b {
        let p = dump_artifact(&format!("{name}-live"), &a);
        let q = dump_artifact(&format!("{name}-restored"), &b);
        panic!(
            "{name}: diverged from the never-crashed original after restore; \
             frames saved to {} and {}",
            p.display(),
            q.display()
        );
    }
}

/// Every truncation and every single-bit flip of `frame` must be rejected
/// with `CorruptCheckpoint` — never a panic, never a silent success.
/// (Checkpoint frames carry a CRC-32, which detects all single-bit errors.)
fn check_rejection<T: Checkpoint>(name: &str, frame: &[u8]) {
    for cut in 0..frame.len() {
        match T::restore(&frame[..cut]) {
            Err(StreamhistError::CorruptCheckpoint { .. }) => {}
            Err(other) => panic!("{name}: truncation to {cut} bytes gave wrong error: {other}"),
            Ok(_) => {
                let p = dump_artifact(&format!("{name}-truncated-{cut}"), &frame[..cut]);
                panic!(
                    "{name}: truncation to {cut} bytes accepted; saved to {}",
                    p.display()
                );
            }
        }
    }
    for bit in 0..frame.len() * 8 {
        let mut flipped = frame.to_vec();
        flipped[bit / 8] ^= 1 << (bit % 8);
        match T::restore(&flipped) {
            Err(StreamhistError::CorruptCheckpoint { .. }) => {}
            Err(other) => panic!("{name}: bit flip {bit} gave wrong error: {other}"),
            Ok(_) => {
                let p = dump_artifact(&format!("{name}-bitflip-{bit}"), &flipped);
                panic!(
                    "{name}: bit flip {bit} accepted; frame saved to {}",
                    p.display()
                );
            }
        }
    }
}

fn ramp(n: usize) -> impl Iterator<Item = f64> {
    (0..n).map(|i| ((i * 7 + 3) % 23) as f64)
}

#[test]
fn fixed_window_round_trips_bit_identically() {
    let mut fw = FixedWindowHistogram::new(64, 4, 0.1);
    ramp(150).for_each(|v| fw.push(v));
    // Materialize once so the cached-generation path is exercised too.
    let live_hist = fw.histogram();
    let restored = FixedWindowHistogram::restore(&fw.encode_checkpoint()).expect("own frame");
    assert_eq!(*restored.histogram(), *live_hist, "histogram bit-identical");
    check_golden("fixed_window", fw, |fw| ramp(40).for_each(|v| fw.push(v)));
}

#[test]
fn agglomerative_round_trips_bit_identically() {
    let mut agg = AgglomerativeHistogram::new(4, 0.1);
    ramp(200).for_each(|v| agg.push(v));
    let live_hist = agg.histogram();
    let restored = AgglomerativeHistogram::restore(&agg.encode_checkpoint()).expect("own frame");
    assert_eq!(*restored.histogram(), *live_hist, "histogram bit-identical");
    check_golden("agglomerative", agg, |agg| {
        ramp(40).for_each(|v| agg.push(v))
    });
}

#[test]
fn time_window_round_trips_bit_identically() {
    let mut tw = TimeWindowHistogram::new(100, 4, 0.1);
    for (i, v) in ramp(150).enumerate() {
        tw.push_at(2 * i as u64, v); // old points age out along the way
    }
    let live_hist = tw.histogram();
    let restored = TimeWindowHistogram::restore(&tw.encode_checkpoint()).expect("own frame");
    assert_eq!(*restored.histogram(), *live_hist, "histogram bit-identical");
    check_golden("time_window", tw, |tw| {
        for (i, v) in ramp(40).enumerate() {
            tw.push_at(300 + 2 * i as u64, v);
        }
    });
}

#[test]
fn quantile_summaries_round_trip_bit_identically() {
    let mut gk = GkSummary::new(0.01);
    ramp(500).for_each(|v| gk.push(v));
    check_golden("gk", gk, |gk| ramp(60).for_each(|v| gk.push(v)));

    let mut mrl = MrlSummary::new(32);
    ramp(500).for_each(|v| mrl.push(v));
    check_golden("mrl", mrl, |mrl| ramp(60).for_each(|v| mrl.push(v)));

    let mut ed = StreamingEquiDepth::new(0.05, 8);
    ramp(500).for_each(|v| StreamSummary::push(&mut ed, v));
    check_golden("equi_depth", ed, |ed| {
        ramp(60).for_each(|v| StreamSummary::push(ed, v));
    });
}

#[test]
fn frequency_vector_round_trips_bit_identically() {
    let mut fv = FrequencyVector::new(-50, 50);
    for i in 0..400i64 {
        fv.push((i * 13 + 7) % 90 - 45); // some values fall out of range
    }
    fv.push(999); // pin out_of_range preservation
    check_golden("frequency_vector", fv, |fv| {
        for i in 0..60i64 {
            fv.push((i * 11) % 70 - 35);
        }
    });
}

#[test]
fn histogram_round_trips_bit_identically() {
    // The standalone Histogram frame (tag 10) exists so *merged* global
    // snapshots can be checkpointed — a gathered histogram has no backing
    // summary to re-derive it from. A Histogram has no push; the lockstep
    // continuation is a merge, which is the mutation it exists for.
    let data: Vec<f64> = ramp(200).collect();
    let hist = approx_histogram(&data, 6, 0.1);
    let other: Vec<f64> = ramp(90).map(|v| v * 2.0).collect();
    let tail = approx_histogram(&other, 6, 0.1);
    check_golden("histogram", hist, |h| {
        h.merge_from(&tail)
            .expect("self-merge of a valid histogram");
    });
}

#[test]
fn global_snapshot_checkpoints_and_restores_losslessly() {
    // Satellite of the scatter/gather work: the fleet-global merged
    // histogram survives a checkpoint round-trip even though no single
    // shard holds it.
    let fleet = ShardedFixedWindow::builder(3, 32, 4, 0.1)
        .build()
        .expect("valid parameters");
    let data: Vec<f64> = ramp(300).collect();
    fleet.push_batch_scatter(&data).expect("lossless push");
    let (global, _) = fleet.snapshot_global().expect("fleet healthy");
    let frame = global.encode_checkpoint();
    let restored = Histogram::restore(&frame).expect("own frame");
    assert_eq!(
        restored, *global,
        "merged snapshot restores bit-identically"
    );
    for r in fleet.join() {
        r.expect("worker alive");
    }
}

#[test]
fn wavelets_round_trip_bit_identically() {
    let mut dw = DynamicWavelet::new(64);
    ramp(40).for_each(|v| dw.push(v));
    dw.set(5, 17.0);
    dw.add(10, -3.5);
    check_golden("dynamic_wavelet", dw, |dw| {
        dw.add(3, 2.25);
        dw.set(20, -1.0);
    });

    let mut sw = SlidingWindowWavelet::new(64, 8);
    ramp(150).for_each(|v| sw.push(v));
    check_golden("sliding_wavelet", sw, |sw| {
        ramp(40).for_each(|v| sw.push(v))
    });
}

#[test]
fn every_truncation_and_bit_flip_is_rejected_cleanly() {
    // Smaller payloads than the golden tests: the sweep is quadratic-ish
    // (frame length x restores), and the CRC argument is length-independent.
    let mut fw = FixedWindowHistogram::new(16, 3, 0.2);
    ramp(30).for_each(|v| fw.push(v));
    check_rejection::<FixedWindowHistogram>("fixed_window", &fw.encode_checkpoint());

    let mut agg = AgglomerativeHistogram::new(3, 0.2);
    ramp(40).for_each(|v| agg.push(v));
    check_rejection::<AgglomerativeHistogram>("agglomerative", &agg.encode_checkpoint());

    let mut tw = TimeWindowHistogram::new(40, 3, 0.2);
    for (i, v) in ramp(30).enumerate() {
        tw.push_at(2 * i as u64, v);
    }
    check_rejection::<TimeWindowHistogram>("time_window", &tw.encode_checkpoint());

    let mut gk = GkSummary::new(0.05);
    ramp(60).for_each(|v| gk.push(v));
    check_rejection::<GkSummary>("gk", &gk.encode_checkpoint());

    let mut mrl = MrlSummary::new(8);
    ramp(60).for_each(|v| mrl.push(v));
    check_rejection::<MrlSummary>("mrl", &mrl.encode_checkpoint());

    let mut ed = StreamingEquiDepth::new(0.1, 4);
    ramp(60).for_each(|v| StreamSummary::push(&mut ed, v));
    check_rejection::<StreamingEquiDepth>("equi_depth", &ed.encode_checkpoint());

    let mut fv = FrequencyVector::new(-10, 10);
    for i in 0..40i64 {
        fv.push(i % 25 - 12);
    }
    check_rejection::<FrequencyVector>("frequency_vector", &fv.encode_checkpoint());

    let mut dw = DynamicWavelet::new(16);
    ramp(12).for_each(|v| dw.push(v));
    check_rejection::<DynamicWavelet>("dynamic_wavelet", &dw.encode_checkpoint());

    let data: Vec<f64> = ramp(40).collect();
    let hist = approx_histogram(&data, 3, 0.2);
    check_rejection::<Histogram>("histogram", &hist.encode_checkpoint());

    let mut sw = SlidingWindowWavelet::new(16, 4);
    ramp(30).for_each(|v| sw.push(v));
    check_rejection::<SlidingWindowWavelet>("sliding_wavelet", &sw.encode_checkpoint());
}

#[test]
fn frames_are_not_interchangeable_between_types() {
    // The tag byte prevents a frame from one summary type restoring as
    // another, even though both frames carry valid CRCs.
    let mut gk = GkSummary::new(0.05);
    ramp(60).for_each(|v| gk.push(v));
    let frame = gk.encode_checkpoint();
    assert!(matches!(
        MrlSummary::restore(&frame),
        Err(StreamhistError::CorruptCheckpoint { .. })
    ));
    assert!(matches!(
        FixedWindowHistogram::restore(&frame),
        Err(StreamhistError::CorruptCheckpoint { .. })
    ));
}

/// Deterministic crash-consistency fuzz over the sharded layer: random
/// pushes interleaved with injected worker panics, checkpoint-backed
/// respawns, and barrier snapshots. At the end, per shard:
///
/// ```text
/// pushes_accepted == final summary total_pushed + sum(lost_since_checkpoint)
/// ```
///
/// and a quiescent fleet save must load back to bit-identical snapshots.
/// Override the seed with `RECOVERY_SEED=<u64>` to replay a CI failure.
#[test]
fn crash_consistency_fuzz() {
    let seed: u64 = std::env::var("RECOVERY_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xD15E_A5E0);
    let mut rng = StdRng::seed_from_u64(seed);

    const SHARDS: usize = 4;
    let mut sharded = ShardedFixedWindow::builder(SHARDS, 32, 3, 0.2)
        .checkpoint_interval(16)
        .queue_capacity(64)
        .build()
        .expect("valid parameters");
    let mut lost = [0u64; SHARDS];

    for _ in 0..4000 {
        let roll: u32 = rng.gen_range(0..100);
        let shard = rng.gen_range(0..SHARDS);
        if roll < 88 {
            // Sends to a dead shard fail; those records were never
            // accepted, so they don't enter the conservation identity.
            let v = f64::from(rng.gen_range(0..50u32));
            let _ = sharded.push_to(shard, v);
        } else if roll < 92 {
            let _ = sharded.inject_worker_panic(shard);
        } else if roll < 96 {
            // Barrier: also how death becomes observable to the sender.
            let _ = sharded.snapshot(shard);
        } else {
            lost[shard] += sharded.respawn_shard(shard).lost_since_checkpoint;
        }
    }

    // Recover whatever is still dead, then quiesce the whole fleet.
    for (shard, shard_lost) in lost.iter_mut().enumerate() {
        if sharded.snapshot(shard).is_err() {
            *shard_lost += sharded.respawn_shard(shard).lost_since_checkpoint;
        }
    }
    let snaps = sharded.snapshot_all();
    assert!(
        snaps.iter().all(Result::is_ok),
        "fleet healthy after recovery"
    );

    // A checkpoint taken at quiescence round-trips the whole fleet
    // bit-for-bit.
    let mut save = Vec::new();
    sharded.checkpoint_all(&mut save).expect("fleet healthy");
    sharded
        .restore_all(&mut save.as_slice())
        .expect("own save loads");
    let reloaded = sharded.snapshot_all();
    if snaps != reloaded {
        let p = dump_artifact(&format!("fuzz-fleet-save-seed-{seed}"), &save);
        panic!(
            "fleet save did not round-trip (seed {seed}); save written to {}",
            p.display()
        );
    }

    // Exact conservation, per shard.
    let metrics = sharded.metrics_all();
    let summaries: Vec<FixedWindowHistogram> = sharded
        .join()
        .into_iter()
        .map(|r| r.expect("worker alive at join"))
        .collect();
    for shard in 0..SHARDS {
        let accepted = metrics[shard].pushes_accepted;
        let surviving = summaries[shard].total_pushed();
        if accepted != surviving + lost[shard] {
            let p = dump_artifact(&format!("fuzz-fleet-save-seed-{seed}"), &save);
            panic!(
                "conservation violated on shard {shard} (seed {seed}): \
                 accepted {accepted} != surviving {surviving} + lost {}; \
                 save written to {}",
                lost[shard],
                p.display()
            );
        }
    }
}

/// One immediate retry per store call: `FailingStore::every_nth` with
/// `n >= 2` guarantees a failed call's retry succeeds, keeping the fuzz's
/// own store reads deterministic.
fn retrying<T>(mut f: impl FnMut() -> Result<T, StoreError>) -> T {
    f().or_else(|_| f()).expect("second attempt always lands")
}

/// Independent re-execution of the recovery rule, straight off the store:
/// restore the newest durable frame (or start fresh), then replay every
/// contiguous WAL segment past it, record by record. The fuzz compares
/// this against the state the fleet actually recovered — they must match
/// bit for bit.
fn replay_from_store(
    store: &dyn CheckpointStore,
    shard: usize,
    fresh: impl FnOnce() -> FixedWindowHistogram,
) -> FixedWindowHistogram {
    let ids = retrying(|| store.list(shard));
    let newest = ids
        .iter()
        .filter(|id| id.kind == ObjectKind::Frame)
        .max_by_key(|id| id.seq);
    let mut fw = match newest {
        Some(id) => FixedWindowHistogram::restore(&retrying(|| store.get(id)))
            .expect("durable frame decodes"),
        None => fresh(),
    };
    let mut expected = fw.total_pushed();
    for id in ids.iter().filter(|id| id.kind == ObjectKind::WalSegment) {
        if id.seq > expected {
            break; // gap: nothing past it is contiguous
        }
        let seg = WalSegment::decode(&retrying(|| store.get(id))).expect("durable segment decodes");
        if seg.end() <= expected {
            continue; // fully covered by the frame or an earlier segment
        }
        let skip = usize::try_from(expected - seg.base).expect("small");
        for &v in &seg.records[skip..] {
            fw.push(v);
        }
        expected = seg.end();
    }
    fw
}

/// Deterministic crash-**mid-upload** fuzz over the store-backed
/// durability pipeline: random batches stream into a durable fleet whose
/// [`FailingStore`] fails every 7th store call (exercising the uploader's
/// retry path on puts, lists, gets, and truncates alike), and workers are
/// panicked at arbitrary points — including while segments and frames are
/// still queued behind the uploader. Each respawn must recover from
/// **last durable frame + WAL replay** with *exact* loss accounting:
///
/// * `restored_len + lost_since_checkpoint == records accepted`, always;
/// * on even seeds every batch is a whole number of WAL segments, so the
///   unsynced tail is always empty and `lost_since_checkpoint == 0` — a
///   synced record is never lost;
/// * on odd seeds the loss is strictly below `wal_sync` (only the
///   unsynced tail can die with the worker);
/// * after every respawn, the freshly seeded worker is **bit-identical**
///   to an independent re-execution of the recovery rule — newest durable
///   frame restored, contiguous WAL segments replayed — straight off the
///   store: recovery is last frame + WAL replay, nothing else;
/// * at quiescence, every shard's window holds exactly the tail of its
///   surviving lineage — no record is reordered, duplicated, or invented.
///
/// Override the seed with `RECOVERY_SEED=<u64>` to replay a CI failure;
/// failing states are dumped to `target/recovery-artifacts/`.
#[test]
fn crash_mid_upload_fuzz() {
    let seed: u64 = std::env::var("RECOVERY_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xDEAD_10AD);
    let mut rng = StdRng::seed_from_u64(seed);

    const SHARDS: usize = 3;
    const CAPACITY: usize = 64;
    const B: usize = 4;
    const EPS: f64 = 0.2;
    const WAL_SYNC: usize = 8;
    let aligned = seed.is_multiple_of(2);

    let store = Arc::new(FailingStore::every_nth(MemStore::new(), 7));
    let mut fleet = ShardedFixedWindow::builder(SHARDS, CAPACITY, B, EPS)
        .checkpoint_interval(32)
        .durability(
            DurabilityOptions::new(Arc::clone(&store) as _)
                .wal_sync(WAL_SYNC)
                .checkpoint_interval(32)
                .upload_queue_capacity(16),
        )
        .build()
        .expect("valid durable fleet");

    // Per shard, the exact records its summary should hold: grown on
    // every accepted batch, truncated to the restored length on every
    // lossy recovery (lost records are gone for good, by design).
    let mut lineage: Vec<Vec<f64>> = vec![Vec::new(); SHARDS];

    for step in 0..600 {
        let shard = rng.gen_range(0..SHARDS);
        let roll: u32 = rng.gen_range(0..100);
        if roll < 80 {
            let n = if aligned {
                WAL_SYNC * rng.gen_range(1..=3)
            } else {
                rng.gen_range(1..=20)
            };
            let batch: Vec<f64> = (0..n).map(|_| f64::from(rng.gen_range(0..64u32))).collect();
            fleet
                .push_batch(shard, batch.clone())
                .expect("worker alive between injected crashes");
            lineage[shard].extend_from_slice(&batch);
        } else if roll < 90 {
            // Barrier: drains the shard's queue, so the WAL keeps pace.
            fleet.snapshot(shard).expect("worker alive");
        } else {
            // Crash mid-upload: the panic lands while segments (and
            // possibly a frame) are still queued behind the uploader.
            fleet
                .inject_worker_panic(shard)
                .expect("worker alive to receive the panic");
            assert!(fleet.snapshot(shard).is_err(), "death is observable");
            let report = fleet.respawn_shard(shard);
            let lost = usize::try_from(report.lost_since_checkpoint).expect("small");
            let restored = usize::try_from(report.restored_len).expect("small");
            assert_eq!(
                restored + lost,
                lineage[shard].len(),
                "seed {seed} step {step} shard {shard}: loss accounting must be exact"
            );
            if aligned {
                assert_eq!(
                    lost, 0,
                    "seed {seed} step {step} shard {shard}: every record was synced \
                     (batches are whole segments), so none may be lost"
                );
            } else {
                assert!(
                    lost < WAL_SYNC,
                    "seed {seed} step {step} shard {shard}: only the unsynced tail \
                     (< {WAL_SYNC} records) may die with the worker, lost {lost}"
                );
            }
            lineage[shard].truncate(restored);

            // Bit-identity of the recovery rule: re-execute "newest frame
            // + contiguous WAL replay" independently off the real store
            // and compare it against the state the fleet actually seeded
            // the replacement worker with (captured via a scratch save
            // before any further pushes reach the shard).
            let replayed = replay_from_store(&*store, shard, || {
                FixedWindowHistogram::new(CAPACITY, B, EPS)
            });
            assert_eq!(
                replayed.total_pushed(),
                report.restored_len,
                "seed {seed} step {step} shard {shard}: independent replay length"
            );
            let scratch = MemStore::new();
            fleet
                .save_to_store(&scratch)
                .expect("fleet healthy after respawn");
            let saved = scratch.list(shard).expect("scratch store lists");
            let frame_id = saved
                .iter()
                .find(|id| id.kind == ObjectKind::Frame)
                .expect("save_to_store wrote a frame for the shard");
            let live = scratch.get(frame_id).expect("scratch frame readable");
            let want = replayed.encode_checkpoint();
            if live != want {
                let p = dump_artifact(&format!("wal-fuzz-live-seed-{seed}-step-{step}"), &live);
                let q = dump_artifact(&format!("wal-fuzz-want-seed-{seed}-step-{step}"), &want);
                panic!(
                    "seed {seed} step {step} shard {shard}: recovered state is not \
                     last-frame + WAL replay; frames saved to {} and {}",
                    p.display(),
                    q.display()
                );
            }
        }
    }

    // Quiesce, then pin the final durability counters: Block policy plus
    // per-call fault injection with retries must never shed a segment.
    for shard in 0..SHARDS {
        fleet.snapshot(shard).expect("fleet healthy at the end");
    }
    let status = fleet.wal_status();
    assert!(status.enabled, "durable fleet reports an enabled WAL");
    assert_eq!(
        status.segments_dropped, 0,
        "seed {seed}: OverloadPolicy::Block never sheds segments"
    );
    assert!(
        status.retries > 0,
        "seed {seed}: the FailingStore must have exercised the retry path"
    );

    // Conservation of content: each shard's final summary holds exactly
    // its surviving lineage — the full count, and the window is the exact
    // tail of the records that survived every crash. (Encode-level
    // comparison against a single-life reference is deliberately not used
    // here: batch-boundary rebase timing legitimately perturbs low-order
    // prefix rounding; the bit-identity contract — recovery == last frame
    // + WAL replay — is pinned per crash above.)
    let summaries: Vec<FixedWindowHistogram> = fleet
        .join()
        .into_iter()
        .map(|r| r.expect("worker alive at join"))
        .collect();
    for (shard, fw) in summaries.iter().enumerate() {
        assert_eq!(
            usize::try_from(fw.total_pushed()).expect("small"),
            lineage[shard].len(),
            "seed {seed} shard {shard}: every surviving record is counted"
        );
        let tail_len = lineage[shard].len().min(CAPACITY);
        let tail = &lineage[shard][lineage[shard].len() - tail_len..];
        assert_eq!(
            fw.window(),
            tail,
            "seed {seed} shard {shard}: window is the exact lineage tail"
        );
    }
}

// ---------------------------------------------------------------------
// Supervised chaos sweep (DESIGN.md "Supervision and degraded serving").
// ---------------------------------------------------------------------

/// Mirror of the supervisor's per-shard state machine, stepped in
/// lockstep with [`Supervisor::probe_once`] so every transition the real
/// supervisor makes can be predicted — and therefore asserted — exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ModelState {
    Live,
    Dead,
    Recovering,
    Quarantined,
}

struct ModelShard {
    state: ModelState,
    /// Whether the worker thread is actually running (the supervisor may
    /// not have noticed a death yet; the model always knows).
    worker_alive: bool,
    failures: u64,
    restarts: u64,
    /// Once a shard has been restarted, the chaos options' huge
    /// `flap_window` means its failure count never resets again.
    ever_restarted: bool,
}

/// Event shapes for sequence comparison ([`SupervisorEvent::Restarted`]
/// and `Probation` carry a [`RecoveryReport`](streamhist::RecoveryReport)
/// the model cannot predict; the reports are verified separately against
/// the conservation identity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventShape {
    Died(usize),
    Restarted(usize),
    Deferred(usize),
    Quarantined(usize),
    Probation(usize),
    Recovered(usize),
}

fn shape(e: &SupervisorEvent) -> EventShape {
    match *e {
        SupervisorEvent::Died { shard } => EventShape::Died(shard),
        SupervisorEvent::Restarted { shard, .. } => EventShape::Restarted(shard),
        SupervisorEvent::RestartDeferred { shard } => EventShape::Deferred(shard),
        SupervisorEvent::Quarantined { shard } => EventShape::Quarantined(shard),
        SupervisorEvent::Probation { shard, .. } => EventShape::Probation(shard),
        SupervisorEvent::Recovered { shard } => EventShape::Recovered(shard),
    }
}

const CHAOS_QUARANTINE_AFTER: u64 = 3;

/// The model's copy of `decide_dead`: quarantine past the threshold,
/// restart otherwise (the chaos options keep the token bucket always
/// full, so deferral is unreachable).
fn model_decide_dead(m: &mut ModelShard, shard: usize, out: &mut Vec<EventShape>) {
    if m.failures >= CHAOS_QUARANTINE_AFTER {
        m.state = ModelState::Quarantined;
        out.push(EventShape::Quarantined(shard));
    } else {
        m.state = ModelState::Recovering;
        m.worker_alive = true;
        m.restarts += 1;
        m.ever_restarted = true;
        out.push(EventShape::Restarted(shard));
    }
}

/// One model probe pass, returning the exact event sequence the real
/// supervisor must emit for the same pass.
fn model_probe(model: &mut [ModelShard]) -> Vec<EventShape> {
    let mut out = Vec::new();
    for (shard, m) in model.iter_mut().enumerate() {
        match m.state {
            ModelState::Live | ModelState::Recovering => {
                if m.worker_alive {
                    if m.state == ModelState::Recovering {
                        m.state = ModelState::Live;
                        out.push(EventShape::Recovered(shard));
                    }
                    // flap_window is huge, so only a shard that has never
                    // been restarted can reset its failure count.
                    if !m.ever_restarted {
                        m.failures = 0;
                    }
                } else {
                    m.state = ModelState::Dead;
                    m.failures += 1;
                    out.push(EventShape::Died(shard));
                    model_decide_dead(m, shard, &mut out);
                }
            }
            ModelState::Dead => model_decide_dead(m, shard, &mut out),
            ModelState::Quarantined => {
                // Zero backoff and a full bucket: probation next pass.
                m.state = ModelState::Recovering;
                m.worker_alive = true;
                m.restarts += 1;
                m.ever_restarted = true;
                out.push(EventShape::Probation(shard));
            }
        }
    }
    out
}

fn to_model(s: ShardState) -> ModelState {
    match s {
        ShardState::Live => ModelState::Live,
        ShardState::Dead => ModelState::Dead,
        ShardState::Recovering => ModelState::Recovering,
        ShardState::Quarantined => ModelState::Quarantined,
    }
}

/// Supervised chaos sweep: a durable fleet over a fault-injecting store,
/// random worker kills, and a manually stepped supervisor whose every
/// probe pass is checked — event for event, state for state — against an
/// independent model of the Live→Dead→Recovering→Quarantined machine.
/// Along the way, every `Degraded` snapshot's coverage report is compared
/// against ground truth computed from the model's own liveness view and
/// the records the test knows it sent. At the end, exact conservation:
///
/// ```text
/// sent_finite == pushes_accepted            (nothing vanishes in queues)
/// sent_nan    == values_rejected            (every NaN counted)
/// 0           == records_dropped            (Block policy never sheds)
/// accepted    == surviving + sum(lost)      (every loss is reported)
/// ```
///
/// Override the seed with `RECOVERY_SEED=<u64>` to replay a CI failure.
#[test]
fn supervised_chaos_sweep() {
    let seed: u64 = std::env::var("RECOVERY_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED_F1EE7);
    let mut rng = StdRng::seed_from_u64(seed);

    const SHARDS: usize = 4;
    let store = Arc::new(FailingStore::every_nth(MemStore::new(), 7));
    // Big enough that nothing the sweep emits (supervisor transitions,
    // checkpoint uploads, upload retries, degraded snapshots) is ever
    // evicted: the reconstruction check below requires the full tape.
    let recorder = Arc::new(FlightRecorder::with_capacity(8192));
    let fleet = ShardedFixedWindow::builder(SHARDS, 64, 4, 0.2)
        .checkpoint_interval(16)
        .recorder(Arc::clone(&recorder))
        .durability(
            DurabilityOptions::new(Arc::clone(&store) as _)
                .wal_sync(8)
                .checkpoint_interval(16)
                .upload_queue_capacity(16),
        )
        .build()
        .expect("valid durable fleet");
    let handle = FleetHandle::new(fleet);
    let sup = Supervisor::attach(
        handle.clone(),
        SupervisorOptions {
            ping_timeout: Duration::from_millis(500),
            restart_burst: 4,
            // Zero refill period = always-full bucket: restarts are never
            // deferred, so every pass is exactly predictable.
            restart_refill: Duration::ZERO,
            quarantine_after: u32::try_from(CHAOS_QUARANTINE_AFTER).expect("small"),
            quarantine_backoff: Duration::ZERO,
            // Huge flap window: every death counts as consecutive, so
            // quarantine is reachable deterministically.
            flap_window: Duration::from_secs(3600),
            ..SupervisorOptions::default()
        },
    )
    .expect("valid supervisor options");

    let mut model: Vec<ModelShard> = (0..SHARDS)
        .map(|_| ModelShard {
            state: ModelState::Live,
            worker_alive: true,
            failures: 0,
            restarts: 0,
            ever_restarted: false,
        })
        .collect();
    let mut sent_finite = [0u64; SHARDS];
    let mut sent_nan = [0u64; SHARDS];
    let mut lost = [0u64; SHARDS];
    let mut degraded_snapshots = 0u32;
    let mut partial_snapshots = 0u64;
    let mut quarantines_seen = 0u32;
    // The model-predicted supervisor timeline, accumulated probe pass by
    // probe pass; the flight recorder must replay it exactly at the end.
    let mut expected_timeline: Vec<EventShape> = Vec::new();

    // One probe pass plus full cross-checks: the event sequence matches
    // the model's, per-restart reports satisfy the conservation identity
    // at the instant of recovery, and `health()` mirrors the model.
    let mut probe_and_verify =
        |sup: &Supervisor, model: &mut Vec<ModelShard>, lost: &mut [u64; SHARDS], step: usize| {
            let expected = model_probe(model);
            let events = sup.probe_once();
            let got: Vec<EventShape> = events.iter().map(shape).collect();
            assert_eq!(
                got, expected,
                "seed {seed} step {step}: probe pass diverged from the model"
            );
            expected_timeline.extend_from_slice(&expected);
            for e in &events {
                let (shard, report) = match *e {
                    SupervisorEvent::Restarted { shard, report }
                    | SupervisorEvent::Probation { shard, report } => (shard, report),
                    SupervisorEvent::Quarantined { .. } => {
                        quarantines_seen += 1;
                        continue;
                    }
                    _ => continue,
                };
                lost[shard] += report.lost_since_checkpoint;
                // At the instant of a restart nothing new has been pushed,
                // so the cumulative accepted counter must equal what was
                // restored plus everything ever reported lost.
                let accepted = handle.metrics(shard).expect("valid index").pushes_accepted;
                assert_eq!(
                    accepted,
                    report.restored_len + lost[shard],
                    "seed {seed} step {step} shard {shard}: restart report breaks conservation"
                );
            }
            for (h, m) in sup.health().iter().zip(model.iter()) {
                assert_eq!(
                    to_model(h.state),
                    m.state,
                    "seed {seed} step {step} shard {}: state diverged",
                    h.shard
                );
                assert_eq!(h.consecutive_failures, m.failures, "shard {}", h.shard);
                assert_eq!(h.restarts, m.restarts, "shard {}", h.shard);
            }
        };

    for step in 0..400 {
        let roll: u32 = rng.gen_range(0..100);
        if roll < 60 {
            // Push a small batch at a shard whose worker is running; a
            // sprinkle of NaNs exercises the rejection counter.
            let alive: Vec<usize> = (0..SHARDS).filter(|&s| model[s].worker_alive).collect();
            let Some(&shard) = alive.get(rng.gen_range(0..alive.len().max(1))) else {
                continue;
            };
            for _ in 0..rng.gen_range(1..=12) {
                if rng.gen_range(0..16) == 0 {
                    handle
                        .push_to(shard, f64::NAN)
                        .expect("valid index")
                        .expect("rejected, not fatal");
                    sent_nan[shard] += 1;
                } else {
                    let v = f64::from(rng.gen_range(0..50u32));
                    handle
                        .push_to(shard, v)
                        .expect("valid index")
                        .expect("worker alive");
                    sent_finite[shard] += 1;
                }
            }
        } else if roll < 75 {
            // Kill a running worker; the supervisor finds out on its next
            // probe pass, the model knows immediately.
            let alive: Vec<usize> = (0..SHARDS).filter(|&s| model[s].worker_alive).collect();
            if let Some(&shard) = alive.get(rng.gen_range(0..alive.len().max(1))) {
                handle
                    .inject_worker_panic(shard)
                    .expect("valid index")
                    .expect("worker alive");
                model[shard].worker_alive = false;
            }
        } else if roll < 90 {
            probe_and_verify(&sup, &mut model, &mut lost, step);
        } else {
            // Degraded snapshot: its coverage must match ground truth
            // computed from the model's liveness and the sent counts.
            let included: usize = model.iter().filter(|m| m.worker_alive).count();
            let result =
                handle.snapshot_global_with(SnapshotPolicy::Degraded { min_coverage: 0.0 });
            if included == 0 {
                assert!(result.is_err(), "seed {seed} step {step}: empty gather");
                continue;
            }
            let (_hist, _stats, cov) = result.unwrap_or_else(|e| {
                panic!("seed {seed} step {step}: degraded gather failed over {included} live shards: {e}")
            });
            degraded_snapshots += 1;
            let repr: u64 = (0..SHARDS)
                .filter(|&s| model[s].worker_alive)
                .map(|s| sent_finite[s])
                .sum();
            let total: u64 = sent_finite.iter().sum();
            assert_eq!(cov.shards_total, SHARDS, "seed {seed} step {step}");
            assert_eq!(cov.shards_included, included, "seed {seed} step {step}");
            assert_eq!(cov.records_represented, repr, "seed {seed} step {step}");
            assert_eq!(cov.records_total, total, "seed {seed} step {step}");
            assert_eq!(
                cov.is_complete(),
                included == SHARDS,
                "seed {seed} step {step}"
            );
            if included < SHARDS {
                partial_snapshots += 1;
            }
            if included < SHARDS && repr < total {
                // An unreachable floor must fail the gather rather than
                // hand out a snapshot claiming coverage it does not have.
                assert!(
                    handle
                        .snapshot_global_with(SnapshotPolicy::Degraded { min_coverage: 1.0 })
                        .is_err(),
                    "seed {seed} step {step}: floor above actual coverage must fail"
                );
            }
        }
    }

    // Drain: with kills stopped, a few passes walk every shard back to
    // Live (Dead -> Recovering -> Live, Quarantined -> probation -> Live).
    for extra in 0..8 {
        if model
            .iter()
            .all(|m| m.state == ModelState::Live && m.worker_alive)
        {
            break;
        }
        probe_and_verify(&sup, &mut model, &mut lost, 400 + extra);
    }
    assert!(
        model.iter().all(|m| m.state == ModelState::Live),
        "seed {seed}: fleet did not settle back to Live"
    );

    // The sweep must actually have exercised the interesting paths.
    let sm = sup.metrics();
    assert!(sm.deaths > 0, "seed {seed}: no deaths observed");
    assert_eq!(sm.restarts_deferred, 0, "always-full bucket never defers");
    assert_eq!(
        sm.quarantines,
        u64::from(quarantines_seen),
        "seed {seed}: quarantine entries"
    );
    assert_eq!(
        sm.probations, sm.quarantines,
        "seed {seed}: every quarantine entered was exited via probation"
    );
    assert_eq!(
        sm.records_lost,
        lost.iter().sum::<u64>(),
        "seed {seed}: supervisor-reported losses match the per-event sum"
    );
    assert!(
        degraded_snapshots > 0,
        "seed {seed}: no degraded snapshot was ever taken"
    );

    // --- Flight-recorder reconstruction. The whole chaos run must be
    // replayable from the recorder alone: every model-predicted
    // Died/Restarted/Quarantined/Probation/Recovered transition appears
    // exactly once, in sequence order, with matching shard indices.
    assert!(
        recorder.recorded() <= recorder.capacity() as u64,
        "seed {seed}: recorder overflowed ({} events into {} slots) — \
         the reconstruction check needs the full tape",
        recorder.recorded(),
        recorder.capacity()
    );
    let tape = recorder.all_events();
    assert!(
        tape.windows(2).all(|w| w[0].seq < w[1].seq),
        "seed {seed}: recorder tape must be strictly sequence-ordered"
    );
    let replayed: Vec<EventShape> = tape
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::ShardDied { shard } => Some(EventShape::Died(*shard)),
            EventKind::ShardRestarted { shard, .. } => Some(EventShape::Restarted(*shard)),
            EventKind::RestartDeferred { shard } => Some(EventShape::Deferred(*shard)),
            EventKind::ShardQuarantined { shard } => Some(EventShape::Quarantined(*shard)),
            EventKind::ShardProbation { shard } => Some(EventShape::Probation(*shard)),
            EventKind::ShardRecovered { shard } => Some(EventShape::Recovered(*shard)),
            _ => None,
        })
        .collect();
    assert_eq!(
        replayed, expected_timeline,
        "seed {seed}: the supervisor timeline replayed from the flight \
         recorder diverged from the model's"
    );
    // The durability pipeline and the degraded-serving path left their
    // own tracks on the same tape, interleaved with the supervisor's.
    let uploads = tape
        .iter()
        .filter(|e| matches!(e.kind, EventKind::CheckpointUploaded { .. }))
        .count();
    assert!(
        uploads > 0,
        "seed {seed}: a durable fleet must have recorded checkpoint uploads"
    );
    let retried = tape
        .iter()
        .filter(|e| matches!(e.kind, EventKind::UploadRetried { .. }))
        .count();
    assert!(
        retried > 0,
        "seed {seed}: a FailingStore(every 7th) run must have recorded retries"
    );
    let degraded_served = tape
        .iter()
        .filter(|e| matches!(e.kind, EventKind::SnapshotDegraded { .. }))
        .count() as u64;
    assert_eq!(
        degraded_served, partial_snapshots,
        "seed {seed}: one SnapshotDegraded event per served partial gather"
    );

    // Quiesce and check the books: exact conservation per shard.
    let wal = handle.wal_status();
    assert!(wal.enabled, "durable fleet reports an enabled WAL");
    assert_eq!(wal.segments_dropped, 0, "Block policy never sheds segments");
    for shard in 0..SHARDS {
        handle
            .snapshot_shard(shard)
            .expect("valid index")
            .expect("fleet healthy at the end");
        let m = handle.metrics(shard).expect("valid index");
        assert_eq!(
            m.pushes_accepted, sent_finite[shard],
            "seed {seed} shard {shard}: every finite record sent to a live worker is accepted"
        );
        assert_eq!(
            m.values_rejected, sent_nan[shard],
            "seed {seed} shard {shard}: every NaN is rejected"
        );
        assert_eq!(m.records_dropped, 0, "seed {seed} shard {shard}");
    }
    sup.shutdown();
    let summaries = match handle.try_join() {
        Ok(s) => s,
        Err(_) => panic!("seed {seed}: supervisor shutdown must drop its fleet handle"),
    };
    for (shard, summary) in summaries.into_iter().enumerate() {
        let surviving = summary.expect("worker alive at join").total_pushed();
        assert_eq!(
            sent_finite[shard],
            surviving + lost[shard],
            "seed {seed} shard {shard}: accepted == surviving + lost"
        );
    }
}
