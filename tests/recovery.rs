//! Durability acceptance tests: checkpoint round-trips for every summary
//! type, corruption rejection, and a crash-consistency fuzz over the
//! sharded serving layer.
//!
//! Three contracts are pinned here:
//!
//! 1. **Bit-identity** — restoring a checkpoint yields a summary whose
//!    state re-encodes to the exact frame it came from, and that stays
//!    byte-for-byte in lockstep with the never-crashed original as both
//!    keep ingesting.
//! 2. **Corruption safety** — every truncation and every single-bit flip
//!    of a frame is rejected with `StreamhistError::CorruptCheckpoint`;
//!    nothing panics, nothing decodes to garbage.
//! 3. **Conservation** — across random crashes and respawns, every
//!    accepted record is either in the final summary or accounted for in
//!    a `RecoveryReport::lost_since_checkpoint`; nothing silently
//!    vanishes.
//!
//! On failure, the offending frame is written to
//! `target/recovery-artifacts/` so CI can upload it for offline replay.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use streamhist::freq::FrequencyVector;
use streamhist::{
    approx_histogram, AgglomerativeHistogram, Checkpoint, DynamicWavelet, FixedWindowHistogram,
    GkSummary, Histogram, MergeableSummary, MrlSummary, ShardedFixedWindow, SlidingWindowWavelet,
    StreamSummary, StreamhistError, StreamingEquiDepth, TimeWindowHistogram,
};

/// Directory failing frames are dumped to (uploaded by CI on failure).
fn artifact_dir() -> PathBuf {
    let dir = PathBuf::from("target").join("recovery-artifacts");
    std::fs::create_dir_all(&dir).expect("create artifact dir");
    dir
}

fn dump_artifact(name: &str, bytes: &[u8]) -> PathBuf {
    let path = artifact_dir().join(format!("{name}.bin"));
    std::fs::write(&path, bytes).expect("write artifact");
    path
}

/// Round-trips `live` through its checkpoint frame and pins bit-identity:
/// the restored summary re-encodes to the same bytes, and after both
/// instances ingest the same continuation they still encode identically.
fn check_golden<T: Checkpoint>(name: &str, mut live: T, push_more: impl Fn(&mut T)) {
    let frame = live.encode_checkpoint();
    let mut restored = match T::restore(&frame) {
        Ok(r) => r,
        Err(e) => {
            let p = dump_artifact(name, &frame);
            panic!(
                "{name}: rejected its own frame ({e}); frame saved to {}",
                p.display()
            );
        }
    };
    let reencoded = restored.encode_checkpoint();
    if reencoded != frame {
        let p = dump_artifact(&format!("{name}-original"), &frame);
        let q = dump_artifact(&format!("{name}-reencoded"), &reencoded);
        panic!(
            "{name}: restored state re-encodes differently; frames saved to {} and {}",
            p.display(),
            q.display()
        );
    }
    push_more(&mut live);
    push_more(&mut restored);
    let a = live.encode_checkpoint();
    let b = restored.encode_checkpoint();
    if a != b {
        let p = dump_artifact(&format!("{name}-live"), &a);
        let q = dump_artifact(&format!("{name}-restored"), &b);
        panic!(
            "{name}: diverged from the never-crashed original after restore; \
             frames saved to {} and {}",
            p.display(),
            q.display()
        );
    }
}

/// Every truncation and every single-bit flip of `frame` must be rejected
/// with `CorruptCheckpoint` — never a panic, never a silent success.
/// (Checkpoint frames carry a CRC-32, which detects all single-bit errors.)
fn check_rejection<T: Checkpoint>(name: &str, frame: &[u8]) {
    for cut in 0..frame.len() {
        match T::restore(&frame[..cut]) {
            Err(StreamhistError::CorruptCheckpoint { .. }) => {}
            Err(other) => panic!("{name}: truncation to {cut} bytes gave wrong error: {other}"),
            Ok(_) => {
                let p = dump_artifact(&format!("{name}-truncated-{cut}"), &frame[..cut]);
                panic!(
                    "{name}: truncation to {cut} bytes accepted; saved to {}",
                    p.display()
                );
            }
        }
    }
    for bit in 0..frame.len() * 8 {
        let mut flipped = frame.to_vec();
        flipped[bit / 8] ^= 1 << (bit % 8);
        match T::restore(&flipped) {
            Err(StreamhistError::CorruptCheckpoint { .. }) => {}
            Err(other) => panic!("{name}: bit flip {bit} gave wrong error: {other}"),
            Ok(_) => {
                let p = dump_artifact(&format!("{name}-bitflip-{bit}"), &flipped);
                panic!(
                    "{name}: bit flip {bit} accepted; frame saved to {}",
                    p.display()
                );
            }
        }
    }
}

fn ramp(n: usize) -> impl Iterator<Item = f64> {
    (0..n).map(|i| ((i * 7 + 3) % 23) as f64)
}

#[test]
fn fixed_window_round_trips_bit_identically() {
    let mut fw = FixedWindowHistogram::new(64, 4, 0.1);
    ramp(150).for_each(|v| fw.push(v));
    // Materialize once so the cached-generation path is exercised too.
    let live_hist = fw.histogram();
    let restored = FixedWindowHistogram::restore(&fw.encode_checkpoint()).expect("own frame");
    assert_eq!(*restored.histogram(), *live_hist, "histogram bit-identical");
    check_golden("fixed_window", fw, |fw| ramp(40).for_each(|v| fw.push(v)));
}

#[test]
fn agglomerative_round_trips_bit_identically() {
    let mut agg = AgglomerativeHistogram::new(4, 0.1);
    ramp(200).for_each(|v| agg.push(v));
    let live_hist = agg.histogram();
    let restored = AgglomerativeHistogram::restore(&agg.encode_checkpoint()).expect("own frame");
    assert_eq!(*restored.histogram(), *live_hist, "histogram bit-identical");
    check_golden("agglomerative", agg, |agg| {
        ramp(40).for_each(|v| agg.push(v))
    });
}

#[test]
fn time_window_round_trips_bit_identically() {
    let mut tw = TimeWindowHistogram::new(100, 4, 0.1);
    for (i, v) in ramp(150).enumerate() {
        tw.push_at(2 * i as u64, v); // old points age out along the way
    }
    let live_hist = tw.histogram();
    let restored = TimeWindowHistogram::restore(&tw.encode_checkpoint()).expect("own frame");
    assert_eq!(*restored.histogram(), *live_hist, "histogram bit-identical");
    check_golden("time_window", tw, |tw| {
        for (i, v) in ramp(40).enumerate() {
            tw.push_at(300 + 2 * i as u64, v);
        }
    });
}

#[test]
fn quantile_summaries_round_trip_bit_identically() {
    let mut gk = GkSummary::new(0.01);
    ramp(500).for_each(|v| gk.push(v));
    check_golden("gk", gk, |gk| ramp(60).for_each(|v| gk.push(v)));

    let mut mrl = MrlSummary::new(32);
    ramp(500).for_each(|v| mrl.push(v));
    check_golden("mrl", mrl, |mrl| ramp(60).for_each(|v| mrl.push(v)));

    let mut ed = StreamingEquiDepth::new(0.05, 8);
    ramp(500).for_each(|v| StreamSummary::push(&mut ed, v));
    check_golden("equi_depth", ed, |ed| {
        ramp(60).for_each(|v| StreamSummary::push(ed, v));
    });
}

#[test]
fn frequency_vector_round_trips_bit_identically() {
    let mut fv = FrequencyVector::new(-50, 50);
    for i in 0..400i64 {
        fv.push((i * 13 + 7) % 90 - 45); // some values fall out of range
    }
    fv.push(999); // pin out_of_range preservation
    check_golden("frequency_vector", fv, |fv| {
        for i in 0..60i64 {
            fv.push((i * 11) % 70 - 35);
        }
    });
}

#[test]
fn histogram_round_trips_bit_identically() {
    // The standalone Histogram frame (tag 10) exists so *merged* global
    // snapshots can be checkpointed — a gathered histogram has no backing
    // summary to re-derive it from. A Histogram has no push; the lockstep
    // continuation is a merge, which is the mutation it exists for.
    let data: Vec<f64> = ramp(200).collect();
    let hist = approx_histogram(&data, 6, 0.1);
    let other: Vec<f64> = ramp(90).map(|v| v * 2.0).collect();
    let tail = approx_histogram(&other, 6, 0.1);
    check_golden("histogram", hist, |h| {
        h.merge_from(&tail)
            .expect("self-merge of a valid histogram");
    });
}

#[test]
fn global_snapshot_checkpoints_and_restores_losslessly() {
    // Satellite of the scatter/gather work: the fleet-global merged
    // histogram survives a checkpoint round-trip even though no single
    // shard holds it.
    let fleet = ShardedFixedWindow::builder(3, 32, 4, 0.1)
        .build()
        .expect("valid parameters");
    let data: Vec<f64> = ramp(300).collect();
    fleet.push_batch_scatter(&data).expect("lossless push");
    let (global, _) = fleet.snapshot_global().expect("fleet healthy");
    let frame = global.encode_checkpoint();
    let restored = Histogram::restore(&frame).expect("own frame");
    assert_eq!(
        restored, *global,
        "merged snapshot restores bit-identically"
    );
    for r in fleet.join() {
        r.expect("worker alive");
    }
}

#[test]
fn wavelets_round_trip_bit_identically() {
    let mut dw = DynamicWavelet::new(64);
    ramp(40).for_each(|v| dw.push(v));
    dw.set(5, 17.0);
    dw.add(10, -3.5);
    check_golden("dynamic_wavelet", dw, |dw| {
        dw.add(3, 2.25);
        dw.set(20, -1.0);
    });

    let mut sw = SlidingWindowWavelet::new(64, 8);
    ramp(150).for_each(|v| sw.push(v));
    check_golden("sliding_wavelet", sw, |sw| {
        ramp(40).for_each(|v| sw.push(v))
    });
}

#[test]
fn every_truncation_and_bit_flip_is_rejected_cleanly() {
    // Smaller payloads than the golden tests: the sweep is quadratic-ish
    // (frame length x restores), and the CRC argument is length-independent.
    let mut fw = FixedWindowHistogram::new(16, 3, 0.2);
    ramp(30).for_each(|v| fw.push(v));
    check_rejection::<FixedWindowHistogram>("fixed_window", &fw.encode_checkpoint());

    let mut agg = AgglomerativeHistogram::new(3, 0.2);
    ramp(40).for_each(|v| agg.push(v));
    check_rejection::<AgglomerativeHistogram>("agglomerative", &agg.encode_checkpoint());

    let mut tw = TimeWindowHistogram::new(40, 3, 0.2);
    for (i, v) in ramp(30).enumerate() {
        tw.push_at(2 * i as u64, v);
    }
    check_rejection::<TimeWindowHistogram>("time_window", &tw.encode_checkpoint());

    let mut gk = GkSummary::new(0.05);
    ramp(60).for_each(|v| gk.push(v));
    check_rejection::<GkSummary>("gk", &gk.encode_checkpoint());

    let mut mrl = MrlSummary::new(8);
    ramp(60).for_each(|v| mrl.push(v));
    check_rejection::<MrlSummary>("mrl", &mrl.encode_checkpoint());

    let mut ed = StreamingEquiDepth::new(0.1, 4);
    ramp(60).for_each(|v| StreamSummary::push(&mut ed, v));
    check_rejection::<StreamingEquiDepth>("equi_depth", &ed.encode_checkpoint());

    let mut fv = FrequencyVector::new(-10, 10);
    for i in 0..40i64 {
        fv.push(i % 25 - 12);
    }
    check_rejection::<FrequencyVector>("frequency_vector", &fv.encode_checkpoint());

    let mut dw = DynamicWavelet::new(16);
    ramp(12).for_each(|v| dw.push(v));
    check_rejection::<DynamicWavelet>("dynamic_wavelet", &dw.encode_checkpoint());

    let data: Vec<f64> = ramp(40).collect();
    let hist = approx_histogram(&data, 3, 0.2);
    check_rejection::<Histogram>("histogram", &hist.encode_checkpoint());

    let mut sw = SlidingWindowWavelet::new(16, 4);
    ramp(30).for_each(|v| sw.push(v));
    check_rejection::<SlidingWindowWavelet>("sliding_wavelet", &sw.encode_checkpoint());
}

#[test]
fn frames_are_not_interchangeable_between_types() {
    // The tag byte prevents a frame from one summary type restoring as
    // another, even though both frames carry valid CRCs.
    let mut gk = GkSummary::new(0.05);
    ramp(60).for_each(|v| gk.push(v));
    let frame = gk.encode_checkpoint();
    assert!(matches!(
        MrlSummary::restore(&frame),
        Err(StreamhistError::CorruptCheckpoint { .. })
    ));
    assert!(matches!(
        FixedWindowHistogram::restore(&frame),
        Err(StreamhistError::CorruptCheckpoint { .. })
    ));
}

/// Deterministic crash-consistency fuzz over the sharded layer: random
/// pushes interleaved with injected worker panics, checkpoint-backed
/// respawns, and barrier snapshots. At the end, per shard:
///
/// ```text
/// pushes_accepted == final summary total_pushed + sum(lost_since_checkpoint)
/// ```
///
/// and a quiescent fleet save must load back to bit-identical snapshots.
/// Override the seed with `RECOVERY_SEED=<u64>` to replay a CI failure.
#[test]
fn crash_consistency_fuzz() {
    let seed: u64 = std::env::var("RECOVERY_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xD15E_A5E0);
    let mut rng = StdRng::seed_from_u64(seed);

    const SHARDS: usize = 4;
    let mut sharded = ShardedFixedWindow::builder(SHARDS, 32, 3, 0.2)
        .checkpoint_interval(16)
        .queue_capacity(64)
        .build()
        .expect("valid parameters");
    let mut lost = [0u64; SHARDS];

    for _ in 0..4000 {
        let roll: u32 = rng.gen_range(0..100);
        let shard = rng.gen_range(0..SHARDS);
        if roll < 88 {
            // Sends to a dead shard fail; those records were never
            // accepted, so they don't enter the conservation identity.
            let v = f64::from(rng.gen_range(0..50u32));
            let _ = sharded.push_to(shard, v);
        } else if roll < 92 {
            let _ = sharded.inject_worker_panic(shard);
        } else if roll < 96 {
            // Barrier: also how death becomes observable to the sender.
            let _ = sharded.snapshot(shard);
        } else {
            lost[shard] += sharded.respawn_shard(shard).lost_since_checkpoint;
        }
    }

    // Recover whatever is still dead, then quiesce the whole fleet.
    for (shard, shard_lost) in lost.iter_mut().enumerate() {
        if sharded.snapshot(shard).is_err() {
            *shard_lost += sharded.respawn_shard(shard).lost_since_checkpoint;
        }
    }
    let snaps = sharded.snapshot_all();
    assert!(
        snaps.iter().all(Result::is_ok),
        "fleet healthy after recovery"
    );

    // A checkpoint taken at quiescence round-trips the whole fleet
    // bit-for-bit.
    let mut save = Vec::new();
    sharded.checkpoint_all(&mut save).expect("fleet healthy");
    sharded
        .restore_all(&mut save.as_slice())
        .expect("own save loads");
    let reloaded = sharded.snapshot_all();
    if snaps != reloaded {
        let p = dump_artifact(&format!("fuzz-fleet-save-seed-{seed}"), &save);
        panic!(
            "fleet save did not round-trip (seed {seed}); save written to {}",
            p.display()
        );
    }

    // Exact conservation, per shard.
    let metrics = sharded.metrics_all();
    let summaries: Vec<FixedWindowHistogram> = sharded
        .join()
        .into_iter()
        .map(|r| r.expect("worker alive at join"))
        .collect();
    for shard in 0..SHARDS {
        let accepted = metrics[shard].pushes_accepted;
        let surviving = summaries[shard].total_pushed();
        if accepted != surviving + lost[shard] {
            let p = dump_artifact(&format!("fuzz-fleet-save-seed-{seed}"), &save);
            panic!(
                "conservation violated on shard {shard} (seed {seed}): \
                 accepted {accepted} != surviving {surviving} + lost {}; \
                 save written to {}",
                lost[shard],
                p.display()
            );
        }
    }
}
