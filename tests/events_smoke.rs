//! Observability smoke test — the ISSUE's "events-smoke" CI job.
//!
//! One process stands up the full observability surface over a live
//! fleet: a flight recorder wired through the builder, a manually probed
//! supervisor, the framed TCP query server, and the HTTP exposition
//! server with `/events` and `/healthz` enabled. Then a shard is killed
//! and the test asserts the death and restart are retrievable over BOTH
//! event surfaces — the raw-HTTP `/events` page and the `events` admin
//! verb — and that `/healthz` flips 503 → 200 as the fleet heals.
//!
//! The accuracy audit rides along: after any `snapshot_global()` the
//! exposition must carry `streamhist_snapshot_sse_estimate`, the §6/§7
//! gather bound, and their ratio — and the ratio can never exceed
//! `1 + ε` (algebraically it cannot even reach 1 once the fleet has
//! per-shard error mass; see `DESIGN.md` §6).

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;
use streamhist::obs::{
    EventKind, ExpositionOptions, ExpositionServer, FlightRecorder, HealthStatus, MetricsRegistry,
};
use streamhist::serve::{QueryServer, ServeClient, ServeState};
use streamhist::{
    FleetHandle, ShardState, ShardedFixedWindow, SnapshotPolicy, Supervisor, SupervisorOptions,
};

/// One blocking HTTP GET against the exposition server; returns
/// `(status, body)`.
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect exposition");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable status line: {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// The value of the first exposition sample whose name starts with
/// `family` (label set ignored — the smoke test runs one fleet).
fn sample_value(exposition: &str, family: &str) -> Option<f64> {
    exposition.lines().find_map(|line| {
        let rest = line.strip_prefix(family)?;
        if !rest.starts_with('{') && !rest.starts_with(' ') {
            return None; // a longer family name sharing the prefix
        }
        rest.rsplit(' ').next()?.parse().ok()
    })
}

#[test]
fn events_and_health_are_served_over_both_surfaces() {
    const EPS: f64 = 0.1;
    let registry = Arc::new(MetricsRegistry::new());
    let recorder = Arc::new(FlightRecorder::default());
    let fleet = FleetHandle::new(
        ShardedFixedWindow::builder(2, 128, 8, EPS)
            .fleet_label("smoke")
            .registry(Arc::clone(&registry))
            .recorder(Arc::clone(&recorder))
            .build()
            .expect("valid fleet"),
    );
    // Manual probes keep every observed transition deterministic.
    let sup = Supervisor::attach(
        fleet.clone(),
        SupervisorOptions {
            restart_burst: 100,
            quarantine_after: 100,
            flap_window: Duration::ZERO,
            ..SupervisorOptions::default()
        },
    )
    .expect("valid supervisor options");
    let state = ServeState::new(fleet.clone(), Arc::clone(&registry))
        .with_policy(SnapshotPolicy::Degraded { min_coverage: 0.5 })
        .with_supervisor(sup.handle());
    for i in 0..256u64 {
        state.ingest(i, (i % 16) as f64).expect("lossless ingest");
    }
    state.fleet().snapshot_global().expect("healthy fleet");

    let query_server = QueryServer::start("127.0.0.1:0", state.clone(), 2).expect("bind query");
    let health_handle = sup.handle();
    let expo = ExpositionServer::start_with(
        "127.0.0.1:0",
        Arc::clone(&registry),
        ExpositionOptions {
            recorder: Some(Arc::clone(&recorder)),
            health: Some(Arc::new(move || {
                let shards = health_handle.health();
                HealthStatus {
                    healthy: shards.iter().all(|h| h.state == ShardState::Live),
                    summary: shards
                        .iter()
                        .map(|h| format!("shard{}={}", h.shard, h.state))
                        .collect::<Vec<_>>()
                        .join(" "),
                }
            })),
        },
    )
    .expect("bind exposition");
    let expo_addr = expo.local_addr();

    // Healthy fleet: 200 on /healthz.
    sup.probe_once();
    let (status, body) = http_get(expo_addr, "/healthz");
    assert_eq!(status, 200, "healthy fleet must answer 200: {body}");

    // Kill shard 1. The next probe records Died + Restarted; the shard
    // sits in Recovering until the probe after that, so /healthz must
    // report 503 with the per-shard summary in between.
    fleet.inject_worker_panic(1).unwrap().unwrap();
    assert!(!fleet.ping(1, Duration::from_secs(5)).unwrap());
    let events = sup.probe_once();
    assert_eq!(events.len(), 2, "one death, one restart: {events:?}");
    let (status, body) = http_get(expo_addr, "/healthz");
    assert_eq!(status, 503, "recovering fleet must answer 503");
    assert!(body.contains("shard1=recovering"), "{body}");
    sup.probe_once();
    let (status, _) = http_get(expo_addr, "/healthz");
    assert_eq!(status, 200, "healed fleet must answer 200 again");

    // Surface 1: the raw-HTTP /events page carries both transitions.
    let (status, body) = http_get(expo_addr, "/events");
    assert_eq!(status, 200);
    assert!(body.contains("shard_died shard=1"), "{body}");
    assert!(body.contains("shard_restarted shard=1"), "{body}");
    assert!(body.contains("shard_recovered shard=1"), "{body}");

    // Surface 2: the `events` admin verb returns the same timeline,
    // structured. Death precedes restart precedes recovery, each exactly
    // once.
    let mut client = ServeClient::connect(query_server.local_addr()).expect("connect query");
    let (_, wire_events) = client.events_all(0).expect("drain over the wire");
    let positions: Vec<(u64, &'static str)> = wire_events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::ShardDied { shard: 1 } => Some((e.seq, "died")),
            EventKind::ShardRestarted { shard: 1, .. } => Some((e.seq, "restarted")),
            EventKind::ShardRecovered { shard: 1 } => Some((e.seq, "recovered")),
            _ => None,
        })
        .collect();
    let names: Vec<&str> = positions.iter().map(|(_, n)| *n).collect();
    assert_eq!(
        names,
        ["died", "restarted", "recovered"],
        "exactly one of each transition, in order: {wire_events:?}"
    );
    assert!(
        positions.windows(2).all(|w| w[0].0 < w[1].0),
        "transitions must be sequence-ordered: {positions:?}"
    );

    // The accuracy audit: snapshot_global() published the SSE estimate,
    // the gather bound, and their ratio; the ratio respects 1 + ε.
    state.fleet().snapshot_global().expect("healed fleet");
    let (status, metrics) = http_get(expo_addr, "/metrics");
    assert_eq!(status, 200);
    let estimate = sample_value(&metrics, "streamhist_snapshot_sse_estimate")
        .expect("sse estimate gauge must be exposed");
    let bound = sample_value(&metrics, "streamhist_snapshot_error_bound")
        .expect("error bound gauge must be exposed");
    let ratio = sample_value(&metrics, "streamhist_snapshot_error_ratio")
        .expect("error ratio gauge must be exposed");
    assert!(estimate.is_finite() && estimate >= 0.0, "{estimate}");
    assert!(bound >= estimate, "bound {bound} < estimate {estimate}");
    assert!(
        (0.0..=1.0 + EPS).contains(&ratio),
        "error ratio {ratio} must be within [0, 1 + eps]"
    );

    expo.shutdown();
    query_server.shutdown();
    sup.shutdown();
}
