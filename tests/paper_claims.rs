//! The paper's headline claims as small, deterministic integration tests —
//! miniature versions of the experiment harnesses, wired into `cargo test`
//! so the claims are continuously verified, not just measured once.

use streamhist::data::{utilization_trace, WorkloadGen};
use streamhist::{
    evaluate_queries, optimal_histogram, optimal_sse, AgglomerativeHistogram, FixedWindowHistogram,
    Histogram, SlidingWindowWavelet, WaveletSynopsis,
};

/// §5.1 / Figure 6(a)(b): "The benefits in accuracy when compared with
/// Wavelet based histograms are evident" — at equal budget, on a bursty
/// utilization trace, for every tested window and budget.
#[test]
fn claim_fixed_window_beats_wavelet_at_equal_budget() {
    let stream = utilization_trace(30_000, 2_022);
    for &(window, b) in &[(256usize, 8usize), (512, 16), (1024, 16)] {
        let mut fw = FixedWindowHistogram::new(window, b, 0.1);
        let mut wv = SlidingWindowWavelet::new(window, b);
        for &v in &stream {
            fw.push(v);
            wv.push(v);
        }
        let truth = fw.window();
        let queries = WorkloadGen::new(window as u64, window).range_sums(400);
        let rh = evaluate_queries(&truth, fw.histogram().as_ref(), &queries);
        let rw = evaluate_queries(&truth, &wv.synopsis(), &queries);
        assert!(
            rh.mean_abs_error < rw.mean_abs_error,
            "window {window} B {b}: hist {} !< wavelet {}",
            rh.mean_abs_error,
            rw.mean_abs_error
        );
    }
}

/// §5.1: "Accuracy of estimation using fixed window histograms improves
/// with B".
#[test]
fn claim_accuracy_improves_with_buckets() {
    let stream = utilization_trace(10_000, 7);
    let window = 512;
    let mut last = f64::INFINITY;
    for b in [4usize, 8, 16, 32] {
        let mut fw = FixedWindowHistogram::new(window, b, 0.1);
        for &v in &stream {
            fw.push(v);
        }
        let truth = fw.window();
        let queries = WorkloadGen::new(3, window).range_sums(400);
        let r = evaluate_queries(&truth, fw.histogram().as_ref(), &queries);
        assert!(
            r.mean_abs_error <= last * 1.05 + 1e-9,
            "B={b}: {} vs previous {last}",
            r.mean_abs_error
        );
        last = last.min(r.mean_abs_error);
    }
}

/// §5.2: agglomerative accuracy is "comparable" to the optimal DP's —
/// within (1+ε) on SSE and within a few percent on query error.
#[test]
fn claim_agglomerative_comparable_to_optimal() {
    let data = utilization_trace(4_000, 11);
    let b = 24;
    let eps = 0.1;
    let agg = AgglomerativeHistogram::from_slice(&data, b, eps).histogram();
    let opt = optimal_histogram(&data, b);
    assert!(agg.sse(&data) <= (1.0 + eps) * opt.sse(&data) + 1e-6);

    let queries = WorkloadGen::new(5, data.len()).range_sums(600);
    let ra = evaluate_queries(&data, agg.as_ref(), &queries);
    let ro = evaluate_queries(&data, &opt, &queries);
    assert!(
        ra.mean_abs_error <= ro.mean_abs_error * 1.5 + 1.0,
        "agg {} vs opt {}",
        ra.mean_abs_error,
        ro.mean_abs_error
    );
}

/// §3: the V-optimal histogram is never worse than equi-width or the
/// wavelet synopsis in SSE at equal budget (it is the SSE optimum).
#[test]
fn claim_v_optimal_is_the_sse_floor() {
    let data = utilization_trace(2_048, 13);
    for b in [8usize, 16, 32] {
        let opt = optimal_sse(&data, b);
        let ew = Histogram::equi_width(&data, b).sse(&data);
        let wav = WaveletSynopsis::top_b(&data, b).sse(&data);
        assert!(opt <= ew + 1e-6, "b={b}");
        assert!(opt <= wav + 1e-6, "b={b}");
    }
}

/// §4.4 / Figure 4: after a downward level shift leaves the window, the
/// fixed-window algorithm re-derives correct intervals — the scenario the
/// agglomerative algorithm cannot handle incrementally.
#[test]
fn claim_window_adapts_after_shift_leaves() {
    let mut stream = vec![1_000.0; 64];
    stream.extend([5.0, 5.0, 5.0, 5.0, 9.0, 9.0, 9.0, 9.0].repeat(16));
    let window = 64;
    let b = 2;
    let mut fw = FixedWindowHistogram::new(window, b, 0.1);
    for &v in &stream {
        fw.push(v);
    }
    // The window now holds only the 5/9 pattern; optimal SSE for B=2 over
    // a {5,9} alternation splits somewhere, but the guarantee is what we
    // check, with no residue from the departed 1000s.
    let truth = fw.window();
    assert!(
        truth.iter().all(|&v| v < 10.0),
        "window must have shed the 1000s"
    );
    let approx = fw.histogram().sse(&truth);
    let opt = optimal_sse(&truth, b);
    assert!(approx <= 1.1 * opt + 1e-6, "{approx} vs {opt}");
}

/// Theorem 1's practical content: materializing via CreateList touches far
/// fewer HERROR evaluations than the window size times levels (the naive
/// DP's work), on a large window with moderate δ.
#[test]
fn claim_createlist_is_sublinear_in_window_work() {
    let stream = utilization_trace(8_192, 17);
    let b = 4;
    let mut fw = FixedWindowHistogram::new(8_192, b, 1.0);
    for &v in &stream {
        fw.push(v);
    }
    let (_, stats) = fw.histogram_with_stats();
    // Naive DP would perform ~ window² * B /2 ≈ 1.3e8 bucket-cost
    // evaluations; CreateList's HERROR evaluations must be orders of
    // magnitude fewer.
    assert!(
        stats.herror_evals < 100_000,
        "CreateList did {} evaluations on an 8k window",
        stats.herror_evals
    );
    let q: usize = stats.queue_sizes.iter().sum();
    assert!(q < 2_048, "queues held {q} intervals");
}
