//! Golden-corpus backwards compatibility: committed checkpoint frames from
//! the era the frame format was introduced (PR 4, `VERSION = 1`) must
//! decode forever, bit-identically, on every future revision.
//!
//! Three layers of pinning:
//!
//! 1. **Decode-forever** — every committed frame under `tests/compat/`
//!    restores through its summary type and re-encodes to the *exact*
//!    golden bytes. A failure here means a format break: readers in the
//!    field could no longer load their own checkpoints.
//! 2. **Encoder stability** — rebuilding each summary from the same
//!    deterministic inputs still produces the golden bytes, so the
//!    encoders have not silently drifted either.
//! 3. **Version skew** — the exact rejection the envelope gives each kind
//!    of incompatible frame (future version, foreign magic, wrong tag,
//!    truncation, bit rot) is pinned as a table.
//!
//! Regenerate the corpus (only after an *intentional*, version-bumped
//! format change) with:
//!
//! ```text
//! cargo test --test backwards_compat -- --ignored regenerate
//! ```

use std::path::PathBuf;

use streamhist::freq::FrequencyVector;
use streamhist::{
    approx_histogram, AgglomerativeHistogram, Checkpoint, DynamicWavelet, FixedWindowHistogram,
    GkSummary, Histogram, MrlSummary, QuantileSummary, SlidingWindowWavelet, StreamSummary,
    StreamhistError, StreamingEquiDepth, TimeWindowHistogram, WalSegment,
};
use streamhist_core::checkpoint::{crc32, tag, MAGIC, VERSION};

/// The deterministic value generator every corpus summary ingests — a
/// small coprime LCG-ish ramp with no shared state, so the corpus can be
/// rebuilt bit-identically on any machine, forever.
fn gen(i: usize) -> f64 {
    ((i * 31 + 7) % 17) as f64
}

fn compat_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/compat")
}

/// Builds every corpus summary from first principles and encodes it.
/// Returns `(file name, frame bytes)` pairs covering **all eleven**
/// checkpoint tags.
fn corpus() -> Vec<(&'static str, Vec<u8>)> {
    let data200: Vec<f64> = (0..200).map(gen).collect();

    let mut fw = FixedWindowHistogram::new(64, 4, 0.1);
    for i in 0..300 {
        fw.push(gen(i));
    }

    let agg = AgglomerativeHistogram::from_slice(&data200, 4, 0.1);

    let mut tw = TimeWindowHistogram::builder(100, 4, 0.1)
        .build()
        .expect("valid time-window params");
    for ts in 0..150u64 {
        tw.push_at(ts, gen(ts as usize));
    }

    let mut gk = GkSummary::new(0.05);
    let mut mrl = MrlSummary::new(4);
    let mut eq = StreamingEquiDepth::new(0.05, 8);
    for i in 0..500 {
        gk.push(gen(i));
        mrl.push(gen(i));
        eq.push(gen(i));
    }

    let f = FrequencyVector::from_values((0..400).map(|i| ((i * 7 + 3) % 19) as i64), 0, 15);

    let mut dw = DynamicWavelet::new(32);
    for i in 0..20 {
        dw.push(gen(i));
    }

    let mut sw = SlidingWindowWavelet::new(64, 8);
    for i in 0..200 {
        sw.push(gen(i));
    }

    let hist = approx_histogram(&data200, 4, 0.1);

    let seg = WalSegment {
        shard: 3,
        base: 128,
        records: (0..12).map(gen).collect(),
    };

    vec![
        ("fixed_window.ckpt", fw.encode_checkpoint()),
        ("agglomerative.ckpt", agg.encode_checkpoint()),
        ("time_window.ckpt", tw.encode_checkpoint()),
        ("gk.ckpt", gk.encode_checkpoint()),
        ("mrl.ckpt", mrl.encode_checkpoint()),
        ("equi_depth.ckpt", eq.encode_checkpoint()),
        ("frequency_vector.ckpt", f.encode_checkpoint()),
        ("dynamic_wavelet.ckpt", dw.encode_checkpoint()),
        ("sliding_wavelet.ckpt", sw.encode_checkpoint()),
        ("histogram.ckpt", hist.encode_checkpoint()),
        ("wal_segment.ckpt", seg.encode()),
    ]
}

fn read_golden(name: &str) -> Vec<u8> {
    let path = compat_dir().join(name);
    std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden frame {} ({e}); run \
             `cargo test --test backwards_compat -- --ignored regenerate`",
            path.display()
        )
    })
}

/// Restores golden bytes through the type the file name designates and
/// re-encodes, returning the round-tripped bytes.
fn reencode(name: &str, bytes: &[u8]) -> Vec<u8> {
    match name {
        "fixed_window.ckpt" => FixedWindowHistogram::restore(bytes)
            .expect("golden frame must decode")
            .encode_checkpoint(),
        "agglomerative.ckpt" => AgglomerativeHistogram::restore(bytes)
            .expect("golden frame must decode")
            .encode_checkpoint(),
        "time_window.ckpt" => TimeWindowHistogram::restore(bytes)
            .expect("golden frame must decode")
            .encode_checkpoint(),
        "gk.ckpt" => GkSummary::restore(bytes)
            .expect("golden frame must decode")
            .encode_checkpoint(),
        "mrl.ckpt" => MrlSummary::restore(bytes)
            .expect("golden frame must decode")
            .encode_checkpoint(),
        "equi_depth.ckpt" => StreamingEquiDepth::restore(bytes)
            .expect("golden frame must decode")
            .encode_checkpoint(),
        "frequency_vector.ckpt" => FrequencyVector::restore(bytes)
            .expect("golden frame must decode")
            .encode_checkpoint(),
        "dynamic_wavelet.ckpt" => DynamicWavelet::restore(bytes)
            .expect("golden frame must decode")
            .encode_checkpoint(),
        "sliding_wavelet.ckpt" => SlidingWindowWavelet::restore(bytes)
            .expect("golden frame must decode")
            .encode_checkpoint(),
        "histogram.ckpt" => Histogram::restore(bytes)
            .expect("golden frame must decode")
            .encode_checkpoint(),
        "wal_segment.ckpt" => WalSegment::decode(bytes)
            .expect("golden frame must decode")
            .encode(),
        other => panic!("no decoder registered for corpus file {other}"),
    }
}

/// Writes the corpus to `tests/compat/`. `#[ignore]`d: run explicitly,
/// and only when a format change is intentional.
#[test]
#[ignore = "regenerates the committed golden corpus; run explicitly"]
fn regenerate() {
    let dir = compat_dir();
    std::fs::create_dir_all(&dir).expect("create tests/compat");
    for (name, bytes) in corpus() {
        std::fs::write(dir.join(name), &bytes).expect("write golden frame");
        #[allow(clippy::disallowed_macros)] // regeneration is interactive by design
        {
            println!("wrote {name}: {} bytes", bytes.len());
        }
    }
}

#[test]
fn golden_frames_decode_and_reencode_bit_identically() {
    for (name, _) in corpus() {
        let golden = read_golden(name);
        let roundtripped = reencode(name, &golden);
        assert_eq!(
            roundtripped, golden,
            "{name}: decode→re-encode must reproduce the golden bytes exactly"
        );
    }
}

#[test]
fn current_encoders_still_produce_the_golden_bytes() {
    for (name, fresh) in corpus() {
        let golden = read_golden(name);
        assert_eq!(
            fresh, golden,
            "{name}: rebuilding from the deterministic inputs no longer \
             matches the committed frame — the encoder drifted without a \
             version bump"
        );
    }
}

#[test]
fn golden_fixed_window_pins_exact_state() {
    let fw = FixedWindowHistogram::restore(&read_golden("fixed_window.ckpt"))
        .expect("golden frame must decode");
    assert_eq!(fw.total_pushed(), 300);
    let expected: Vec<f64> = (236..300).map(gen).collect();
    assert_eq!(fw.window(), &expected[..], "last 64 of the 300 pushes");
}

#[test]
fn golden_quantile_summaries_pin_exact_counts() {
    let gk = GkSummary::restore(&read_golden("gk.ckpt")).expect("golden frame must decode");
    assert_eq!(gk.count(), 500);
    let mrl = MrlSummary::restore(&read_golden("mrl.ckpt")).expect("golden frame must decode");
    assert_eq!(mrl.count(), 500);
    let eq = StreamingEquiDepth::restore(&read_golden("equi_depth.ckpt"))
        .expect("golden frame must decode");
    assert_eq!(eq.summary().count(), 500);
}

#[test]
fn golden_frequency_vector_pins_exact_counts() {
    let f = FrequencyVector::restore(&read_golden("frequency_vector.ckpt"))
        .expect("golden frame must decode");
    // Recompute the exact tallies from the generator.
    let mut in_range = 0u64;
    let mut threes = 0u64;
    for i in 0..400i64 {
        let v = (i * 7 + 3) % 19;
        if (0..=15).contains(&v) {
            in_range += 1;
            if v == 3 {
                threes += 1;
            }
        }
    }
    assert_eq!(f.total(), in_range);
    assert_eq!(f.out_of_range(), 400 - in_range);
    assert_eq!(f.count_of(3), threes);
}

#[test]
fn golden_wavelet_and_wal_pin_exact_values() {
    let dw = DynamicWavelet::restore(&read_golden("dynamic_wavelet.ckpt"))
        .expect("golden frame must decode");
    assert_eq!(dw.len(), 20);
    for i in 0..20 {
        assert!((dw.value(i) - gen(i)).abs() < 1e-12, "position {i}");
    }

    let seg =
        WalSegment::decode(&read_golden("wal_segment.ckpt")).expect("golden frame must decode");
    assert_eq!(seg.shard, 3);
    assert_eq!(seg.base, 128);
    assert_eq!(seg.end(), 140);
    let expected: Vec<f64> = (0..12).map(gen).collect();
    assert_eq!(seg.records, expected);
}

/// Replaces the CRC trailer after mutating header bytes, so the mutation
/// under test — not the checksum — is what the decoder sees.
fn reseal(mut frame: Vec<u8>) -> Vec<u8> {
    let body_len = frame.len() - 4;
    let crc = crc32(&frame[..body_len]);
    frame[body_len..].copy_from_slice(&crc.to_le_bytes());
    frame
}

fn reason_of(err: StreamhistError) -> &'static str {
    match err {
        StreamhistError::CorruptCheckpoint { reason } => reason,
        other => panic!("expected CorruptCheckpoint, got {other:?}"),
    }
}

#[test]
fn version_skew_table_pins_every_rejection() {
    let golden = read_golden("fixed_window.ckpt");
    assert_eq!(golden[0], MAGIC);
    assert_eq!(golden[1], VERSION);
    assert_eq!(golden[2], tag::FIXED_WINDOW);

    // A frame from a future format version: valid checksum, version 2.
    let mut future = golden.clone();
    future[1] = VERSION + 1;
    let future = reseal(future);
    let err = FixedWindowHistogram::restore(&future).expect_err("future version");
    assert_eq!(reason_of(err), "unsupported frame version");

    // A frame from some other protocol entirely (foreign magic).
    let mut foreign = golden.clone();
    foreign[0] = b'X';
    let foreign = reseal(foreign);
    let err = FixedWindowHistogram::restore(&foreign).expect_err("foreign magic");
    assert_eq!(reason_of(err), "bad magic byte");

    // A valid frame routed to the wrong summary type.
    let gk_frame = read_golden("gk.ckpt");
    let err = FixedWindowHistogram::restore(&gk_frame).expect_err("wrong tag");
    assert_eq!(reason_of(err), "frame is for a different summary type");

    // Truncated below the minimum envelope.
    let err = FixedWindowHistogram::restore(&golden[..3]).expect_err("short frame");
    assert_eq!(reason_of(err), "frame shorter than header + checksum");

    // Truncated mid-payload: the checksum no longer lines up.
    let err =
        FixedWindowHistogram::restore(&golden[..golden.len() - 1]).expect_err("cut tail byte");
    assert_eq!(reason_of(err), "checksum mismatch");

    // Bit rot anywhere without resealing fails the checksum.
    let mut rotted = golden.clone();
    rotted[golden.len() / 2] ^= 0x10;
    let err = FixedWindowHistogram::restore(&rotted).expect_err("flipped bit");
    assert_eq!(reason_of(err), "checksum mismatch");

    // Trailing garbage shifts the checksum window off the real trailer.
    let mut padded = golden.clone();
    padded.push(0);
    let err = FixedWindowHistogram::restore(&padded).expect_err("trailing byte");
    assert_eq!(reason_of(err), "checksum mismatch");
}
