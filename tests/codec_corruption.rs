//! Property-based corruption suite for the histogram wire codec
//! (`streamhist::codec`).
//!
//! Unlike checkpoint frames, the wire format carries **no checksum** — it
//! relies on structural validation only. So the contract pinned here is
//! deliberately weaker than the checkpoint one:
//!
//! * round-trips are exact for arbitrary histograms;
//! * every truncation is rejected with a clean error;
//! * a random bit flip either fails decoding or yields a *structurally
//!   valid* histogram (buckets tile the domain, heights finite) — a flip
//!   inside a height, for instance, legitimately decodes to a different
//!   but well-formed histogram. Decoding must never panic either way.

use proptest::prelude::*;
use streamhist::codec::{decode, encode};
use streamhist::{approx_histogram, Histogram};

/// Structural invariants any decoded histogram must satisfy: contiguous
/// buckets tiling `[0, domain_len)` in order, with finite heights.
fn assert_structurally_valid(h: &Histogram) {
    let buckets = h.buckets();
    let mut expect_start = 0usize;
    for b in buckets {
        assert_eq!(b.start, expect_start, "buckets must be contiguous");
        assert!(b.end >= b.start, "bucket range must be non-empty");
        assert!(b.height.is_finite(), "bucket height must be finite");
        expect_start = b.end + 1;
    }
    assert_eq!(
        expect_start,
        h.domain_len(),
        "buckets must tile the whole domain"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exact round-trip for arbitrary (data, B) histograms.
    #[test]
    fn round_trips_exactly(
        data in prop::collection::vec(-100..100i64, 1..60),
        b in 1usize..6,
    ) {
        let data: Vec<f64> = data.into_iter().map(|v| v as f64).collect();
        let h = approx_histogram(&data, b, 0.5);
        let bytes = encode(&h);
        let back = decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(h, back);
    }

    /// Every single-byte truncation of a valid encoding is rejected with
    /// an error, never a panic and never a silent success.
    #[test]
    fn every_truncation_is_rejected(
        data in prop::collection::vec(-100..100i64, 1..60),
        b in 1usize..6,
    ) {
        let data: Vec<f64> = data.into_iter().map(|v| v as f64).collect();
        let bytes = encode(&approx_histogram(&data, b, 0.5));
        for cut in 0..bytes.len() {
            prop_assert!(
                decode(&bytes[..cut]).is_err(),
                "truncation to {} of {} bytes must fail",
                cut,
                bytes.len()
            );
        }
    }

    /// Every single-bit flip either fails decoding or produces a
    /// structurally valid histogram; decoding never panics. (No CRC on
    /// the wire format, so strict rejection is impossible — a height
    /// flip is indistinguishable from a different valid histogram.)
    #[test]
    fn every_bit_flip_decodes_cleanly_or_fails(
        data in prop::collection::vec(-100..100i64, 1..60),
        b in 1usize..6,
    ) {
        let data: Vec<f64> = data.into_iter().map(|v| v as f64).collect();
        let bytes = encode(&approx_histogram(&data, b, 0.5));
        for bit in 0..bytes.len() * 8 {
            let mut flipped = bytes.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            if let Ok(h) = decode(&flipped) {
                assert_structurally_valid(&h);
                // A structurally valid decode must itself round-trip.
                let again = decode(&encode(&h)).expect("re-encoding decodes");
                prop_assert_eq!(h, again, "bit {}", bit);
            }
        }
    }
}
