//! Adversarial query sweep: malformed [`Query`] values against every
//! [`SequenceSummary`] implementation in the workspace.
//!
//! The contract pinned here is the bugfix this PR ships: a query whose
//! range is inverted (`end < start`), out of the summary's domain, or
//! degenerate (`usize::MAX` endpoints that would overflow the old
//! `end - start + 1` span arithmetic) must be rejected by
//! [`Query::validate`] / [`Query::try_exact`] / [`Query::try_estimate`]
//! with [`StreamhistError::InvalidQuery`] — never a wrap, never a panic,
//! on any summary type. Valid queries, meanwhile, must evaluate
//! identically through the fallible and panicking paths.

use proptest::prelude::*;
use streamhist::{
    approx_histogram, ExactSummary, Query, SequenceSummary, StreamhistError, WaveletSynopsis,
};

/// The workspace's summary implementations over one dataset, boxed so a
/// single sweep covers all of them.
fn summaries(data: &[f64]) -> Vec<(&'static str, Box<dyn SequenceSummary + '_>)> {
    vec![
        (
            "Histogram",
            Box::new(approx_histogram(data, 4.min(data.len().max(1)), 0.1)),
        ),
        ("ExactSummary", Box::new(ExactSummary::new(data))),
        (
            "WaveletSynopsis",
            Box::new(WaveletSynopsis::top_b(data, 4.min(data.len().max(1)))),
        ),
    ]
}

fn data_strategy() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e6f64..1e6, 1..65)
}

/// An endpoint that is either small (in or near the domain) or within 64
/// of `usize::MAX` (the overflow-adjacent band the old span arithmetic
/// wrapped on).
fn endpoint(sel: u8, small: usize, delta: usize) -> usize {
    if sel == 0 {
        usize::MAX - delta
    } else {
        small
    }
}

/// Any of: inverted, out-of-domain, boundary-degenerate, or valid.
fn query_strategy() -> impl Strategy<Value = Query> {
    (
        (0u8..4, 0u8..3, 0usize..128),
        (0u8..3, 0usize..128, 0usize..64),
    )
        .prop_map(|((kind, sel_a, a_small), (sel_b, b_small, delta))| {
            let a = endpoint(sel_a, a_small, delta);
            let b = endpoint(sel_b, b_small, delta / 2);
            match kind {
                0 => Query::Point { idx: a },
                1 => Query::RangeSum { start: a, end: b },
                2 => Query::RangeAvg { start: a, end: b },
                _ => Query::RangeCount { start: a, end: b },
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The core sweep: for every summary impl, `try_estimate` either
    /// errors with `InvalidQuery` (exactly when `validate` says so) or
    /// returns a finite value — and never panics on any input.
    #[test]
    fn try_estimate_never_panics_and_matches_validate(
        data in data_strategy(),
        queries in proptest::collection::vec(query_strategy(), 1..32),
    ) {
        for (name, summary) in summaries(&data) {
            let domain = summary.summary_len();
            for q in &queries {
                let verdict = q.validate(domain);
                let outcome = q.try_estimate(summary.as_ref());
                match verdict {
                    Ok(()) => {
                        let v = outcome.unwrap_or_else(|e| {
                            panic!("{name}: valid {q:?} rejected: {e}")
                        });
                        prop_assert!(
                            v.is_finite(),
                            "{name}: valid {q:?} gave non-finite {v}"
                        );
                    }
                    Err(e) => {
                        prop_assert!(
                            matches!(e, StreamhistError::InvalidQuery { .. }),
                            "{name}: validate must reject with InvalidQuery, got {e}"
                        );
                        let err = outcome.expect_err("invalid query must not evaluate");
                        prop_assert!(
                            matches!(err, StreamhistError::InvalidQuery { .. }),
                            "{name}: {q:?} must fail as InvalidQuery, got {err}"
                        );
                    }
                }
            }
        }
    }

    /// `try_exact` agrees with `try_estimate`'s accept/reject decision on
    /// the exact data, and the two paths answer the same valid queries.
    #[test]
    fn try_exact_accepts_and_rejects_like_try_estimate(
        data in data_strategy(),
        q in query_strategy(),
    ) {
        let exact = ExactSummary::new(&data);
        let by_estimate = q.try_estimate(&exact);
        let by_exact = q.try_exact(&data);
        match (by_estimate, by_exact) {
            (Ok(a), Ok(b)) => prop_assert_eq!(
                a.to_bits(), b.to_bits(),
                "exact evaluation must agree with ExactSummary"
            ),
            (Err(a), Err(b)) => {
                prop_assert!(matches!(a, StreamhistError::InvalidQuery { .. }));
                prop_assert!(matches!(b, StreamhistError::InvalidQuery { .. }));
            }
            (a, b) => prop_assert!(false, "paths disagree: {a:?} vs {b:?}"),
        }
    }

    /// `span()` never underflows: inverted ranges are a documented 0, and
    /// the full-domain range saturates instead of wrapping.
    #[test]
    fn span_never_wraps(
        (sel_a, a_small, da) in (0u8..2, 0usize..4096, 0usize..4096),
        (sel_b, b_small, db) in (0u8..2, 0usize..4096, 0usize..4096),
    ) {
        let a = if sel_a == 0 { usize::MAX - da } else { a_small };
        let b = if sel_b == 0 { usize::MAX - db } else { b_small };
        let q = Query::RangeSum { start: a, end: b };
        let span = q.span();
        if b < a {
            prop_assert_eq!(span, 0, "inverted range must span 0");
        } else {
            prop_assert_eq!(span, (b - a).saturating_add(1));
        }
    }
}

/// The specific overflow shapes from the bug report, pinned exactly
/// (proptest may or may not land on them in a given run).
#[test]
fn known_adversarial_shapes_are_rejected_everywhere() {
    let data: Vec<f64> = (0..32).map(f64::from).collect();
    let adversarial = [
        // Inverted: the old `end - start + 1` underflowed here.
        Query::RangeSum { start: 5, end: 2 },
        Query::RangeAvg { start: 1, end: 0 },
        Query::RangeCount {
            start: usize::MAX,
            end: 0,
        },
        // Out of domain.
        Query::Point { idx: 32 },
        Query::Point { idx: usize::MAX },
        Query::RangeSum {
            start: 0,
            end: usize::MAX,
        },
        // Zero-length domain overshoot by one.
        Query::RangeAvg { start: 31, end: 32 },
    ];
    for (name, summary) in summaries(&data) {
        for q in &adversarial {
            let err = q
                .try_estimate(summary.as_ref())
                .expect_err("adversarial query must be rejected");
            assert!(
                matches!(err, StreamhistError::InvalidQuery { .. }),
                "{name}: {q:?} -> {err}"
            );
        }
    }
    // Zero-length (single-point) ranges are VALID — the guard must not
    // over-reject.
    for (name, summary) in summaries(&data) {
        let v = Query::RangeAvg { start: 7, end: 7 }
            .try_estimate(summary.as_ref())
            .unwrap_or_else(|e| panic!("{name}: single-point range is valid: {e}"));
        assert!(v.is_finite(), "{name}");
    }
}
