//! Cross-crate integration tests: the full pipeline from synthetic stream
//! generation through streaming construction to query answering, exercising
//! every subsystem together through the facade crate's public API.

use streamhist::data::{utilization_trace, WorkloadGen};
use streamhist::{
    approx_histogram, evaluate_queries, optimal_histogram, optimal_sse, AgglomerativeHistogram,
    ExactSummary, FixedWindowHistogram, NaiveSlidingWindow, Query, SequenceSummary,
    SlidingWindowWavelet, WaveletSynopsis,
};

#[test]
fn fixed_window_pipeline_beats_wavelet_on_bursty_trace() {
    let stream = utilization_trace(20_000, 11);
    let window = 512;
    let b = 16;
    let mut fw = FixedWindowHistogram::new(window, b, 0.1);
    let mut wv = SlidingWindowWavelet::new(window, b);
    for &v in &stream {
        fw.push(v);
        wv.push(v);
    }
    let truth = fw.window();
    assert_eq!(truth, wv.window(), "both windows see the same data");

    let queries = WorkloadGen::new(3, window).range_sums(500);
    let hist_report = evaluate_queries(&truth, fw.histogram().as_ref(), &queries);
    let wave_report = evaluate_queries(&truth, &wv.synopsis(), &queries);
    assert!(
        hist_report.mean_abs_error <= wave_report.mean_abs_error,
        "histogram {:.1} should not be worse than wavelet {:.1} on the bursty trace",
        hist_report.mean_abs_error,
        wave_report.mean_abs_error
    );
}

#[test]
fn all_methods_agree_with_exact_when_budget_is_full() {
    // With B = n every method must reproduce the window exactly.
    let data = utilization_trace(64, 5);
    let n = data.len();
    let queries = WorkloadGen::new(9, n).mixed(100);

    let exact = ExactSummary::new(&data);
    let h_opt = optimal_histogram(&data, n);
    let h_approx = approx_histogram(&data, n, 0.1);
    let wav = WaveletSynopsis::top_b(&data, n);

    for q in &queries {
        let truth = q.exact(&data);
        assert!((q.estimate(&exact) - truth).abs() < 1e-9);
        assert!((q.estimate(&h_opt) - truth).abs() < 1e-9, "{q:?}");
        assert!((q.estimate(&h_approx) - truth).abs() < 1e-9, "{q:?}");
        assert!((q.estimate(&wav) - truth).abs() < 1e-6, "{q:?}");
    }
}

#[test]
fn fixed_window_tracks_naive_dp_within_guarantee_on_real_trace() {
    let stream = utilization_trace(3_000, 77);
    let window = 128;
    let b = 8;
    let eps = 0.1;
    let mut fw = FixedWindowHistogram::new(window, b, eps);
    let mut naive = NaiveSlidingWindow::new(window, b);
    for (t, &v) in stream.iter().enumerate() {
        fw.push(v);
        naive.push(v);
        if t % 251 == 0 && t >= window {
            let win = fw.window();
            let approx_sse = fw.histogram().sse(&win);
            let opt_sse = naive.histogram().sse(&win);
            assert!(
                approx_sse <= (1.0 + eps) * opt_sse + 1e-6,
                "t={t}: {approx_sse} vs optimal {opt_sse}"
            );
        }
    }
}

#[test]
fn agglomerative_guarantee_holds_on_trace_prefixes() {
    let stream = utilization_trace(2_000, 13);
    let b = 12;
    let eps = 0.2;
    let mut agg = AgglomerativeHistogram::new(b, eps);
    for (i, &v) in stream.iter().enumerate() {
        agg.push(v);
        if i % 397 == 0 && i > 0 {
            let prefix = &stream[..=i];
            let approx = agg.histogram().sse(prefix);
            let opt = optimal_sse(prefix, b);
            assert!(
                approx <= (1.0 + eps) * opt + 1e-6,
                "prefix {}: {approx} vs {opt}",
                i + 1
            );
        }
    }
}

#[test]
fn query_semantics_are_consistent_across_summaries() {
    let data = utilization_trace(256, 21);
    let h = optimal_histogram(&data, 16);
    // RangeAvg == RangeSum / span, RangeCount is exact, on any summary.
    for (start, end) in [(0usize, 255usize), (10, 10), (100, 200)] {
        let sum = Query::RangeSum { start, end }.estimate(&h);
        let avg = Query::RangeAvg { start, end }.estimate(&h);
        let count = Query::RangeCount { start, end }.estimate(&h);
        assert!((avg - sum / (end - start + 1) as f64).abs() < 1e-9);
        assert_eq!(count, (end - start + 1) as f64);
    }
}

#[test]
fn summaries_compose_with_trait_objects() {
    // The SequenceSummary abstraction supports dynamic dispatch, so
    // heterogeneous method lists (as used by the harnesses) work.
    let data = utilization_trace(512, 33);
    let h = optimal_histogram(&data, 8);
    let w = WaveletSynopsis::top_b(&data, 8);
    let summaries: Vec<&dyn SequenceSummary> = vec![&h, &w];
    let q = Query::RangeSum {
        start: 17,
        end: 399,
    };
    for s in summaries {
        assert_eq!(s.summary_len(), data.len());
        let est = q.estimate(s);
        assert!(est.is_finite());
    }
}

#[test]
fn streaming_histograms_are_deterministic() {
    let stream = utilization_trace(5_000, 99);
    let run = || {
        let mut fw = FixedWindowHistogram::new(256, 8, 0.1);
        for &v in &stream {
            fw.push(v);
        }
        fw.histogram()
    };
    let a = run();
    let b = run();
    assert_eq!(a.bucket_ends(), b.bucket_ends());
    assert_eq!(a.expand(), b.expand());
}

#[test]
fn window_smaller_than_stream_only_sees_tail() {
    let stream: Vec<f64> = (0..100).map(|i| i as f64).collect();
    let mut fw = FixedWindowHistogram::new(10, 10, 0.5);
    for &v in &stream {
        fw.push(v);
    }
    let h = fw.histogram();
    assert_eq!(h.domain_len(), 10);
    // Full budget: exact reproduction of the last 10 values.
    assert_eq!(h.expand(), (90..100).map(|i| i as f64).collect::<Vec<_>>());
}
