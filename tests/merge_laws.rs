//! Property tests for the workspace-wide merge laws (DESIGN.md §6).
//!
//! Every `MergeableSummary` implementation falls into one of two classes,
//! and this suite pins the law each class obeys over *arbitrary* inputs
//! and partitions, not just the hand-picked unit-test vectors:
//!
//! * **Exact merges** (`FrequencyVector`, `DynamicWavelet` superposition)
//!   are bit-for-bit commutative and associative — the merged state equals
//!   the state of the concatenated (resp. superimposed) streams.
//! * **Approximate merges** (`GkSummary`, `FixedWindowHistogram`,
//!   `WaveletSynopsis`) are associative *in error*: any merge order is
//!   valid, and the result honours the composed bound proved in §6 —
//!   rank error `≤ εN` for GK after a k-way partition merge, and
//!   `√SSE(h, u) ≤ √G + √(1+ε)·(√G + √OPT_B(u))` for V-optimal gathers.
//!
//! Config mismatches must be rejected with the exact
//! `InvalidParameter { param }` named in the docs, leaving the receiver
//! untouched.

use proptest::prelude::*;
use streamhist::freq::FrequencyVector;
use streamhist::{
    optimal_sse, DynamicWavelet, FixedWindowHistogram, GkSummary, MergeableSummary,
    QuantileSummary, StreamhistError, TimeWindowHistogram, WaveletSynopsis,
};

fn exact_rank(sorted: &[f64], v: f64) -> usize {
    sorted.partition_point(|&x| x <= v)
}

/// Asserts the GK rank contract `|rank̂(v) − rank(v)| ≤ εN` (plus one for
/// tie rounding) at a spread of probes over the value range.
fn assert_gk_within(gk: &GkSummary, eps: f64, data: &[f64]) {
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = data.len() as f64;
    let lo = sorted[0];
    let hi = sorted[sorted.len() - 1];
    let probes = (0..=8).map(|i| lo + (hi - lo) * i as f64 / 8.0);
    for probe in probes {
        let est = gk.rank(probe) as i64;
        let exact = exact_rank(&sorted, probe) as i64;
        assert!(
            (est - exact).unsigned_abs() as f64 <= eps * n + 1.0,
            "probe {probe}: est {est}, exact {exact}, n {n}, eps {eps}"
        );
    }
}

/// Splits `data` into `k` contiguous non-empty parts (as even as possible).
fn partition(data: &[f64], k: usize) -> Vec<&[f64]> {
    let k = k.min(data.len()).max(1);
    let base = data.len() / k;
    let extra = data.len() % k;
    let mut out = Vec::with_capacity(k);
    let mut start = 0;
    for i in 0..k {
        let len = base + usize::from(i < extra);
        out.push(&data[start..start + len]);
        start += len;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// GK: merging per-partition summaries answers rank queries within
    /// `εN` over the union — rank errors add across the merge (§6), they
    /// do not multiply.
    #[test]
    fn gk_partition_merge_stays_within_eps_n(
        data in prop::collection::vec(0..1000i64, 50..600),
        k in 2usize..6,
    ) {
        let eps = 0.05;
        let data: Vec<f64> = data.into_iter().map(|v| v as f64).collect();
        let parts: Vec<GkSummary> = partition(&data, k)
            .into_iter()
            .map(|chunk| {
                let mut gk = GkSummary::new(eps);
                chunk.iter().for_each(|&v| gk.push(v));
                gk
            })
            .collect();
        let refs: Vec<&GkSummary> = parts.iter().collect();
        let merged = MergeableSummary::merge(&refs).expect("identical eps");
        prop_assert_eq!(merged.count(), data.len());
        assert_gk_within(&merged, eps, &data);
    }

    /// GK: merge order is free — left-fold and right-fold groupings both
    /// satisfy the same `εN` contract (associativity *in error*; the tuple
    /// lists themselves may differ).
    #[test]
    fn gk_merge_is_associative_in_error(
        data in prop::collection::vec(0..500i64, 90..300),
    ) {
        let eps = 0.1;
        let data: Vec<f64> = data.into_iter().map(|v| v as f64).collect();
        let built: Vec<GkSummary> = partition(&data, 3)
            .into_iter()
            .map(|chunk| {
                let mut gk = GkSummary::new(eps);
                chunk.iter().for_each(|&v| gk.push(v));
                gk
            })
            .collect();
        let (a, b, c) = (&built[0], &built[1], &built[2]);

        let mut left = a.clone();
        left.merge_from(b).expect("same eps");
        left.merge_from(c).expect("same eps");

        let mut bc = b.clone();
        bc.merge_from(c).expect("same eps");
        let mut right = a.clone();
        right.merge_from(&bc).expect("same eps");

        prop_assert_eq!(left.count(), data.len());
        prop_assert_eq!(right.count(), data.len());
        assert_gk_within(&left, eps, &data);
        assert_gk_within(&right, eps, &data);
    }

    /// FrequencyVector: the one exact merge — commutative and associative
    /// bit for bit, and equal to the vector of the concatenated stream.
    #[test]
    fn frequency_vector_merge_is_exact_commutative_associative(
        xs in prop::collection::vec(-30..30i64, 1..80),
        ys in prop::collection::vec(-30..30i64, 1..80),
        zs in prop::collection::vec(-30..30i64, 1..80),
    ) {
        let build = |vals: &[i64]| {
            let mut fv = FrequencyVector::new(-20, 20);
            vals.iter().for_each(|&v| fv.push(v));
            fv
        };
        let (a, b, c) = (build(&xs), build(&ys), build(&zs));

        // Exact: merged == vector of the concatenated stream.
        let mut concat = xs.clone();
        concat.extend(&ys);
        concat.extend(&zs);
        let direct = build(&concat);
        let mut abc = a.clone();
        abc.merge_from(&b).expect("same domain");
        abc.merge_from(&c).expect("same domain");
        prop_assert_eq!(abc.counts(), direct.counts());
        prop_assert_eq!(abc.total(), direct.total());
        prop_assert_eq!(abc.out_of_range(), direct.out_of_range());

        // Commutative.
        let mut ab = a.clone();
        ab.merge_from(&b).expect("same domain");
        let mut ba = b.clone();
        ba.merge_from(&a).expect("same domain");
        prop_assert_eq!(ab.counts(), ba.counts());
        prop_assert_eq!(ab.total(), ba.total());

        // Associative: (a⊕b)⊕c == a⊕(b⊕c).
        let mut ab_c = ab;
        ab_c.merge_from(&c).expect("same domain");
        let mut bc = b.clone();
        bc.merge_from(&c).expect("same domain");
        let mut a_bc = a.clone();
        a_bc.merge_from(&bc).expect("same domain");
        prop_assert_eq!(ab_c.counts(), a_bc.counts());
        prop_assert_eq!(ab_c.total(), a_bc.total());
        prop_assert_eq!(ab_c.out_of_range(), a_bc.out_of_range());
    }

    /// WaveletSynopsis: the coefficient merge is exactly commutative (the
    /// deterministic energy-then-index re-threshold ordering, §6).
    #[test]
    fn wavelet_synopsis_merge_is_commutative(
        xs in prop::collection::vec(-50..50i64, 16..48),
        ba in 2usize..8,
        bb in 2usize..8,
    ) {
        let n = xs.len();
        let x: Vec<f64> = xs.iter().map(|&v| v as f64).collect();
        let y: Vec<f64> = xs.iter().rev().map(|&v| (v * 3 % 40) as f64).collect();
        let a = WaveletSynopsis::top_b(&x, ba);
        let b = WaveletSynopsis::top_b(&y[..n], bb);

        let mut ab = a.clone();
        ab.merge_from(&b).expect("same domain");
        let mut ba_s = b.clone();
        ba_s.merge_from(&a).expect("same domain");
        prop_assert_eq!(ab.coefficients(), ba_s.coefficients());
    }

    /// DynamicWavelet: merging superimposes the signals exactly — the Haar
    /// transform is linear and no thresholding is applied.
    #[test]
    fn dynamic_wavelet_merge_superimposes_exactly(
        xs in prop::collection::vec(-100..100i64, 8),
        ys in prop::collection::vec(-100..100i64, 8),
    ) {
        let mut a = DynamicWavelet::new(8);
        let mut b = DynamicWavelet::new(8);
        for i in 0..8 {
            a.set(i, xs[i] as f64);
            b.set(i, ys[i] as f64);
        }
        let mut ab = a.clone();
        ab.merge_from(&b).expect("same capacity");
        for i in 0..8 {
            let want = a.value(i) + b.value(i);
            prop_assert!((ab.value(i) - want).abs() < 1e-9, "index {}", i);
        }
    }

    /// FixedWindowHistogram: a k-way partition merge lands within the §6
    /// gather bound `√SSE(h, u) ≤ √G + √(1+ε)·(√G + √OPT_B(u))`, where
    /// `G = Σᵢ SSE(ĥᵢ, partᵢ)` is the error already present in the parts.
    #[test]
    fn fixed_window_partition_merge_obeys_the_gather_bound(
        data in prop::collection::vec(0..60i64, 24..120),
        k in 2usize..4,
        b in 2usize..5,
    ) {
        let eps = 0.2;
        let data: Vec<f64> = data.into_iter().map(|v| v as f64).collect();
        let parts = partition(&data, k);
        let mut gather_term = 0.0f64;
        let mut summaries = Vec::with_capacity(parts.len());
        for chunk in &parts {
            let mut fw = FixedWindowHistogram::builder(chunk.len(), b, eps)
                .build()
                .expect("valid config");
            fw.push_batch(chunk);
            gather_term += fw.histogram().sse(chunk);
            summaries.push(fw);
        }
        let mut merged = summaries[0].clone();
        for part in &summaries[1..] {
            merged.merge_from(part).expect("identical b/eps/delta");
        }
        prop_assert_eq!(merged.window().len(), data.len());

        let sse = merged.histogram().sse(&data);
        let opt = optimal_sse(&data, b);
        let bound = gather_term.sqrt()
            + (1.0 + eps).sqrt() * (gather_term.sqrt() + opt.sqrt());
        prop_assert!(
            sse.sqrt() <= bound + 1e-6,
            "sse {} exceeds composed bound {} (G {}, OPT {})",
            sse, bound * bound, gather_term, opt
        );
    }
}

/// Every documented config-mismatch rejection, with its exact `param`
/// name, and the receiver left untouched by the failed merge.
#[test]
fn mismatched_configs_are_rejected_with_the_exact_param() {
    fn param_of(err: StreamhistError) -> &'static str {
        match err {
            StreamhistError::InvalidParameter { param, .. } => param,
            other => panic!("expected InvalidParameter, got {other}"),
        }
    }

    // GK: eps must match bitwise; receiver unchanged on rejection.
    let mut gk = GkSummary::new(0.05);
    (0..50).for_each(|i| gk.push(f64::from(i)));
    let stored_before = gk.stored();
    let other = GkSummary::new(0.1);
    assert_eq!(param_of(gk.merge_from(&other).unwrap_err()), "eps");
    assert_eq!(gk.count(), 50, "receiver untouched by rejected merge");
    assert_eq!(gk.stored(), stored_before);

    // FixedWindow: b, eps, then the k-way capacity override.
    let fw = |cap: usize, b: usize, eps: f64| {
        FixedWindowHistogram::builder(cap, b, eps)
            .build()
            .expect("valid config")
    };
    let mut base = fw(16, 4, 0.1);
    assert_eq!(param_of(base.merge_from(&fw(16, 5, 0.1)).unwrap_err()), "b");
    assert_eq!(
        param_of(base.merge_from(&fw(16, 4, 0.2)).unwrap_err()),
        "eps"
    );
    let wider = fw(32, 4, 0.1);
    assert_eq!(
        param_of(MergeableSummary::merge(&[&base, &wider]).unwrap_err()),
        "capacity"
    );

    // TimeWindow: duration.
    let mut tw = TimeWindowHistogram::new(100, 4, 0.1);
    let longer = TimeWindowHistogram::new(200, 4, 0.1);
    assert_eq!(param_of(tw.merge_from(&longer).unwrap_err()), "duration");

    // FrequencyVector: lo, then domain width (reported as "hi").
    let mut fv = FrequencyVector::new(0, 9);
    assert_eq!(
        param_of(fv.merge_from(&FrequencyVector::new(1, 10)).unwrap_err()),
        "lo"
    );
    assert_eq!(
        param_of(fv.merge_from(&FrequencyVector::new(0, 19)).unwrap_err()),
        "hi"
    );

    // Wavelets: signal domain, capacity.
    let mut ws = WaveletSynopsis::top_b(&[1.0; 16], 4);
    let shorter = WaveletSynopsis::top_b(&[1.0; 8], 4);
    assert_eq!(param_of(ws.merge_from(&shorter).unwrap_err()), "n");
    let mut dw = DynamicWavelet::new(8);
    assert_eq!(
        param_of(dw.merge_from(&DynamicWavelet::new(16)).unwrap_err()),
        "capacity"
    );

    // The k-way combinator rejects an empty part list everywhere.
    let empty: [&GkSummary; 0] = [];
    assert_eq!(
        param_of(<GkSummary as MergeableSummary>::merge(&empty).unwrap_err()),
        "parts"
    );
}
